//! Per-suite statistical profiles, calibrated to the paper's published
//! numbers.
//!
//! The real corpora (7.4M SLT cases, 36.7K PostgreSQL cases, 33.1K DuckDB
//! cases — paper Table 4) are not redistributable, so the generators draw
//! from these profiles instead. Each field cites the paper quantity it is
//! calibrated against.

use squality_formats::SuiteKind;

/// Statement-mix entry: a generator statement class and its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixEntry {
    pub kind: StatementClass,
    pub weight: f64,
}

/// What kind of statement to generate (maps onto Figure 2's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatementClass {
    Select,
    Insert,
    CreateTable,
    CreateIndex,
    DropTable,
    Update,
    Delete,
    AlterTable,
    CreateView,
    Begin,
    Commit,
    Rollback,
    Set,
    Pragma,
    Explain,
    Copy,
    CliCommand,
    CreateFunction,
    With,
    /// Intentionally malformed statement testing the parser (`SELEC`).
    ParserGarbage,
    /// A dialect-specific SELECT (pg_* functions, range(), structs...).
    DialectSelect,
    /// A SELECT whose rendering is client-sensitive (lists/floats/bools).
    ClientSensitiveSelect,
    /// Division-semantics probe (the paper's `/` divergence, Listing 4).
    DivisionProbe,
}

/// WHERE-token bucket weights (Figure 3): `[0, 1-2, 3-10, 11-100, 100+]`.
pub type PredicateMix = [f64; 5];

/// Full generation profile for one suite.
#[derive(Debug, Clone)]
pub struct SuiteProfile {
    pub suite: SuiteKind,
    /// Paper Table 1 metadata (reported alongside generated counts).
    pub paper_test_files: usize,
    pub paper_total_cases: usize,
    pub paper_db_engines_rank: u32,
    pub paper_github_stars_k: f64,
    pub paper_dbms_version: &'static str,
    /// Generated file count at scale 1.0.
    pub file_count: usize,
    /// Mean records per file (geometric-ish spread; Figure 1 shape).
    pub mean_records_per_file: usize,
    /// Statement mix (Figure 2 calibration).
    pub statement_mix: &'static [MixEntry],
    /// WHERE-token bucket mix for generated SELECTs (Figure 3).
    pub predicate_mix: PredicateMix,
    /// Fraction of SELECTs with a join (paper: 7.2% overall; 5.1% implicit,
    /// 1.1% inner).
    pub join_rate: f64,
    /// Fraction of records guarded by onlyif-other-engine conditions
    /// (drives Table 4's skipped counts: SLT 19.8%).
    pub foreign_guard_rate: f64,
    /// Fraction of files hidden behind `require <missing extension>`
    /// (DuckDB: 26.2% of cases pre-filtered).
    pub require_gate_rate: f64,
    /// Environment-dependency injection rates (Table 5 calibration):
    /// fraction of files depending on scheduler set-up tables.
    pub setup_dependency_rate: f64,
    /// Fraction of files loading data via COPY from environment paths.
    pub file_dependency_rate: f64,
    /// Fraction of files probing environment settings (SHOW locale...).
    pub setting_dependency_rate: f64,
    /// Fraction of files loading C extensions (paper Listing 7).
    pub extension_dependency_rate: f64,
    /// Probability that a standard statement carries dialect-only
    /// expressions or types (paper §2: statement-level standardness hides
    /// dialect functions; drives Figure 4's cross-engine failure band).
    pub dialect_seasoning_rate: f64,
}

impl SuiteProfile {
    /// The profile for a suite kind.
    pub fn for_suite(suite: SuiteKind) -> SuiteProfile {
        match suite {
            SuiteKind::Slt => slt_profile(),
            SuiteKind::PgRegress => postgres_profile(),
            SuiteKind::Duckdb => duckdb_profile(),
            SuiteKind::MysqlTest => mysql_profile(),
        }
    }

    /// All four profiles.
    pub fn all() -> Vec<SuiteProfile> {
        SuiteKind::ALL.iter().map(|s| SuiteProfile::for_suite(*s)).collect()
    }
}

/// SLT: 99.76% standard statements; only fundamental SQL (paper §4);
/// 35.9% of files contain CREATE INDEX; predicates skew simple but 1.6%
/// exceed 100 tokens; 19.8% of cases skipped by engine conditions.
fn slt_profile() -> SuiteProfile {
    const MIX: &[MixEntry] = &[
        MixEntry { kind: StatementClass::Select, weight: 0.78 },
        MixEntry { kind: StatementClass::DivisionProbe, weight: 0.035 },
        MixEntry { kind: StatementClass::Insert, weight: 0.12 },
        MixEntry { kind: StatementClass::CreateTable, weight: 0.022 },
        MixEntry { kind: StatementClass::CreateIndex, weight: 0.012 },
        MixEntry { kind: StatementClass::DropTable, weight: 0.008 },
        MixEntry { kind: StatementClass::Update, weight: 0.004 },
        MixEntry { kind: StatementClass::Delete, weight: 0.003 },
        MixEntry { kind: StatementClass::CreateView, weight: 0.002 },
        MixEntry { kind: StatementClass::DialectSelect, weight: 0.001 }, // 0.1% (Table 7)
        MixEntry { kind: StatementClass::With, weight: 0.003 },
    ];
    SuiteProfile {
        suite: SuiteKind::Slt,
        paper_test_files: 622,
        paper_total_cases: 7_406_130,
        paper_db_engines_rank: 9,
        paper_github_stars_k: 4.5,
        paper_dbms_version: "3.41.1",
        file_count: 62,
        mean_records_per_file: 320,
        statement_mix: MIX,
        predicate_mix: [0.72, 0.04, 0.18, 0.044, 0.016],
        join_rate: 0.072,
        foreign_guard_rate: 0.198,
        require_gate_rate: 0.0,
        setup_dependency_rate: 0.0,
        file_dependency_rate: 0.0,
        setting_dependency_rate: 0.0,
        extension_dependency_rate: 0.0,
        dialect_seasoning_rate: 0.0,
    }
}

/// PostgreSQL: 68.89% standard (lowest — Table 3); SET 3.62%, heavy
/// EXPLAIN/COPY/CLI usage; 88% of donor failures environment-related,
/// 10% extension-related (Table 5).
fn postgres_profile() -> SuiteProfile {
    const MIX: &[MixEntry] = &[
        MixEntry { kind: StatementClass::Select, weight: 0.19 },
        MixEntry { kind: StatementClass::DialectSelect, weight: 0.30 },
        MixEntry { kind: StatementClass::Insert, weight: 0.11 },
        MixEntry { kind: StatementClass::CreateTable, weight: 0.065 },
        MixEntry { kind: StatementClass::DropTable, weight: 0.038 },
        MixEntry { kind: StatementClass::Explain, weight: 0.032 },
        MixEntry { kind: StatementClass::AlterTable, weight: 0.022 },
        MixEntry { kind: StatementClass::Set, weight: 0.0362 },
        MixEntry { kind: StatementClass::Update, weight: 0.021 },
        MixEntry { kind: StatementClass::CliCommand, weight: 0.042 },
        MixEntry { kind: StatementClass::CreateIndex, weight: 0.02 },
        MixEntry { kind: StatementClass::Delete, weight: 0.012 },
        MixEntry { kind: StatementClass::Begin, weight: 0.011 },
        MixEntry { kind: StatementClass::Commit, weight: 0.0024 },
        MixEntry { kind: StatementClass::Rollback, weight: 0.0042 },
        MixEntry { kind: StatementClass::Copy, weight: 0.01 },
        MixEntry { kind: StatementClass::CreateView, weight: 0.014 },
        MixEntry { kind: StatementClass::CreateFunction, weight: 0.018 },
        MixEntry { kind: StatementClass::With, weight: 0.0048 },
        MixEntry { kind: StatementClass::ParserGarbage, weight: 0.001 },
    ];
    SuiteProfile {
        suite: SuiteKind::PgRegress,
        paper_test_files: 212,
        paper_total_cases: 36_677,
        paper_db_engines_rank: 4,
        paper_github_stars_k: 13.2,
        paper_dbms_version: "15.2",
        file_count: 42,
        mean_records_per_file: 170,
        statement_mix: MIX,
        predicate_mix: [0.85, 0.05, 0.09, 0.01, 0.0],
        join_rate: 0.06,
        foreign_guard_rate: 0.0,
        require_gate_rate: 0.0,
        setup_dependency_rate: 0.55,
        file_dependency_rate: 0.18,
        setting_dependency_rate: 0.10,
        extension_dependency_rate: 0.05,
        dialect_seasoning_rate: 0.85,
    }
}

/// DuckDB: 76.14% standard; PRAGMA 6.99%; 26.2% of cases behind `require`;
/// 77% of donor failures client-related (Table 5).
fn duckdb_profile() -> SuiteProfile {
    const MIX: &[MixEntry] = &[
        MixEntry { kind: StatementClass::Select, weight: 0.28 },
        MixEntry { kind: StatementClass::DialectSelect, weight: 0.18 },
        MixEntry { kind: StatementClass::ClientSensitiveSelect, weight: 0.05 },
        MixEntry { kind: StatementClass::Insert, weight: 0.13 },
        MixEntry { kind: StatementClass::CreateTable, weight: 0.105 },
        MixEntry { kind: StatementClass::Pragma, weight: 0.0699 },
        MixEntry { kind: StatementClass::DropTable, weight: 0.032 },
        MixEntry { kind: StatementClass::Explain, weight: 0.016 },
        MixEntry { kind: StatementClass::AlterTable, weight: 0.012 },
        MixEntry { kind: StatementClass::Set, weight: 0.025 },
        MixEntry { kind: StatementClass::Update, weight: 0.018 },
        MixEntry { kind: StatementClass::CreateIndex, weight: 0.014 },
        MixEntry { kind: StatementClass::Delete, weight: 0.01 },
        MixEntry { kind: StatementClass::Begin, weight: 0.008 },
        MixEntry { kind: StatementClass::Commit, weight: 0.004 },
        MixEntry { kind: StatementClass::Rollback, weight: 0.003 },
        MixEntry { kind: StatementClass::CreateView, weight: 0.009 },
        MixEntry { kind: StatementClass::With, weight: 0.006 },
        MixEntry { kind: StatementClass::ParserGarbage, weight: 0.002 },
    ];
    SuiteProfile {
        suite: SuiteKind::Duckdb,
        paper_test_files: 2537,
        paper_total_cases: 33_113,
        paper_db_engines_rank: 103,
        paper_github_stars_k: 11.9,
        paper_dbms_version: "0.8.1",
        file_count: 127,
        mean_records_per_file: 26,
        statement_mix: MIX,
        predicate_mix: [0.82, 0.06, 0.10, 0.02, 0.0],
        join_rate: 0.08,
        foreign_guard_rate: 0.0,
        require_gate_rate: 0.262,
        setup_dependency_rate: 0.0,
        file_dependency_rate: 0.12,
        setting_dependency_rate: 0.0,
        extension_dependency_rate: 0.0,
        dialect_seasoning_rate: 0.55,
    }
}

/// MySQL: parsed and censused for RQ1/Table 1–2 but excluded from the RQ2
/// content analysis (the paper judges the format too MySQL-specific).
fn mysql_profile() -> SuiteProfile {
    const MIX: &[MixEntry] = &[
        MixEntry { kind: StatementClass::Select, weight: 0.40 },
        MixEntry { kind: StatementClass::DialectSelect, weight: 0.12 },
        MixEntry { kind: StatementClass::Insert, weight: 0.14 },
        MixEntry { kind: StatementClass::CreateTable, weight: 0.09 },
        MixEntry { kind: StatementClass::DropTable, weight: 0.05 },
        MixEntry { kind: StatementClass::Set, weight: 0.05 },
        MixEntry { kind: StatementClass::AlterTable, weight: 0.03 },
        MixEntry { kind: StatementClass::Update, weight: 0.03 },
        MixEntry { kind: StatementClass::Delete, weight: 0.02 },
        MixEntry { kind: StatementClass::CreateIndex, weight: 0.02 },
        MixEntry { kind: StatementClass::Begin, weight: 0.01 },
        MixEntry { kind: StatementClass::Commit, weight: 0.01 },
        MixEntry { kind: StatementClass::CreateView, weight: 0.01 },
        MixEntry { kind: StatementClass::With, weight: 0.005 },
    ];
    SuiteProfile {
        suite: SuiteKind::MysqlTest,
        paper_test_files: 1418,
        paper_total_cases: 300_000,
        paper_db_engines_rank: 2,
        paper_github_stars_k: 9.5,
        paper_dbms_version: "8.0.33",
        file_count: 70,
        mean_records_per_file: 60,
        statement_mix: MIX,
        predicate_mix: [0.80, 0.06, 0.12, 0.02, 0.0],
        join_rate: 0.07,
        foreign_guard_rate: 0.0,
        require_gate_rate: 0.0,
        setup_dependency_rate: 0.02,
        file_dependency_rate: 0.01,
        setting_dependency_rate: 0.01,
        extension_dependency_rate: 0.0,
        dialect_seasoning_rate: 0.42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_one() {
        for p in SuiteProfile::all() {
            let total: f64 = p.statement_mix.iter().map(|m| m.weight).sum();
            assert!((total - 1.0).abs() < 0.05, "{:?}: mix sums to {total}", p.suite);
            let pred: f64 = p.predicate_mix.iter().sum();
            assert!((pred - 1.0).abs() < 0.01, "{:?}: predicate mix sums to {pred}", p.suite);
        }
    }

    #[test]
    fn paper_metadata_matches_table1() {
        let slt = SuiteProfile::for_suite(SuiteKind::Slt);
        assert_eq!(slt.paper_test_files, 622);
        assert_eq!(slt.paper_total_cases, 7_406_130);
        let pg = SuiteProfile::for_suite(SuiteKind::PgRegress);
        assert_eq!(pg.paper_test_files, 212);
        let duck = SuiteProfile::for_suite(SuiteKind::Duckdb);
        assert_eq!(duck.paper_test_files, 2537);
        let my = SuiteProfile::for_suite(SuiteKind::MysqlTest);
        assert_eq!(my.paper_test_files, 1418);
    }

    #[test]
    fn slt_is_most_standard() {
        // Dialect-specific weight must be far lower for SLT than the others
        // (paper Table 7: 0.1% vs 70.2% / 72.7%).
        let dialect_weight = |p: &SuiteProfile| -> f64 {
            p.statement_mix
                .iter()
                .filter(|m| {
                    matches!(
                        m.kind,
                        StatementClass::DialectSelect
                            | StatementClass::ClientSensitiveSelect
                            | StatementClass::Pragma
                            | StatementClass::Set
                            | StatementClass::Explain
                            | StatementClass::Copy
                            | StatementClass::CliCommand
                            | StatementClass::CreateFunction
                    )
                })
                .map(|m| m.weight)
                .sum()
        };
        let slt = dialect_weight(&SuiteProfile::for_suite(SuiteKind::Slt));
        let pg = dialect_weight(&SuiteProfile::for_suite(SuiteKind::PgRegress));
        let duck = dialect_weight(&SuiteProfile::for_suite(SuiteKind::Duckdb));
        assert!(slt < 0.01);
        assert!(pg > 0.25);
        assert!(duck > 0.25);
    }

    #[test]
    fn duckdb_require_rate_matches_paper() {
        let duck = SuiteProfile::for_suite(SuiteKind::Duckdb);
        assert!((duck.require_gate_rate - 0.262).abs() < 1e-9);
        let slt = SuiteProfile::for_suite(SuiteKind::Slt);
        assert!((slt.foreign_guard_rate - 0.198).abs() < 1e-9);
    }
}
