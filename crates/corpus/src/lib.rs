//! Statistically-calibrated synthetic test corpora.
//!
//! The paper's raw material — 7.4M sqllogictest cases, the PostgreSQL
//! regression suite, the DuckDB suite, MySQL's framework tests — cannot be
//! shipped here, so this crate substitutes *generated* corpora whose
//! distributions are calibrated to every quantity the paper publishes:
//! statement mixes (Figure 2), standard-compliance rates (Table 3),
//! WHERE-token buckets (Figure 3), file-size spreads (Figure 1), runner
//! command usage (Table 2), dependency-failure compositions (Table 5), and
//! dialect-specificity (Table 7).
//!
//! Expectations are **recorded from provisioned donor oracles**, never
//! hard-coded, so the dependency and compatibility findings reproduce
//! mechanically rather than by construction. Generation is fully
//! deterministic given a seed.

pub mod environment;
pub mod flood;
pub mod generator;
pub mod profile;
pub mod sqlgen;

pub use environment::{donor_dialect, DonorEnvironment};
pub use flood::{flood_workloads, insert_flood, loop_heavy, mixed_dml, FloodWorkload};
pub use generator::{generate_suite, generate_suite_scaled, GeneratedSuite};
pub use profile::{MixEntry, StatementClass, SuiteProfile};
pub use sqlgen::{GenStatement, SqlGen};
