//! Persistent, signature-indexed bug repository.
//!
//! Triage dedupes a study's raw failures into a handful of minimized,
//! verified repros — and previously threw them away, so every study paid
//! the full clustering/ddmin cost again and no bug ever became a
//! regression test. This crate makes the repro corpus durable: a
//! versioned on-disk store (`.squality-bugs/v1/`) where each entry is one
//! root-cause bug, addressed by a content hash of its normalized
//! [`FailureSignature`] (modulo stability annotation), carrying
//!
//! * the minimized repro itself (SLT text) plus the reduction stats that
//!   produced it,
//! * the stability verdict from the rerun arm, when one was computed,
//! * full provenance: donor suite, host dialect, matrix arm, translation
//!   mode, per-rule translation counters, the resolved donor environment
//!   (repros must replay standalone, and generation mutates the
//!   environment), the engine semantics version the repro was verified
//!   against, and the first/last study fingerprints that saw it.
//!
//! Consumers: incremental triage skips clustering/ddmin for stored
//! signatures and re-verifies entries whose semantics version is stale;
//! the replay service runs the whole corpus as a first-class suite and
//! reports still-failing / fixed / regressed transitions per entry.
//!
//! The store borrows the result cache's durability discipline wholesale:
//! one file per entry under a schema-versioned directory, atomic
//! temp-file + rename writes, a header line double-checking the version,
//! and *any* read problem degrading to a miss — the store can always be
//! rebuilt by one triage run. Signature serialization is the shared
//! [`squality_runner::sigcodec`] codec, so the cache and the bug store
//! can never drift apart on the wire format.

use squality_corpus::DonorEnvironment;
use squality_engine::EngineDialect;
use squality_formats::{ContentHasher, SuiteKind};
use squality_runner::sigcodec::{
    decode_signature, decode_translation_counts, encode_signature, encode_translation_counts,
    escape, unescape,
};
use squality_runner::{FailureSignature, Stability, TranslationCounts, TranslationMode};
use squality_sqltext::TextDialect;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// On-disk format version: directory name (`v1/`) and entry header.
/// Bumping it orphans every entry written by older code.
pub const STORE_VERSION: u32 = 1;

/// Process-wide counter making concurrent writers' temp file names unique.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The study-matrix arm an entry's exemplar failure came from. Mirrors
/// the triage arm taxonomy without depending on the core crate (core
/// depends on this crate, not vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugArm {
    /// Donor suite on its own engine, bare provisioning.
    DonorBare,
    /// Matrix cell executed verbatim.
    Verbatim,
    /// Matrix cell executed through the translation layer.
    Translated,
}

impl BugArm {
    /// Short label for tables (`""` / `" [verbatim]"`-style suffixes are
    /// the caller's concern; this is the bare arm name).
    pub fn label(self) -> &'static str {
        match self {
            BugArm::DonorBare => "donor-bare",
            BugArm::Verbatim => "verbatim",
            BugArm::Translated => "translated",
        }
    }
}

/// One persisted bug: a minimized repro plus everything needed to replay
/// it standalone and to account for where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct BugEntry {
    /// The clustering signature, always pre-annotation
    /// (`stability: None`); the verdict lives in
    /// [`BugEntry::stability`] so annotated and unannotated observations
    /// of the same bug share one entry.
    pub signature: FailureSignature,
    /// Rerun-arm verdict, when one has been computed.
    pub stability: Option<Stability>,
    /// Repro file name (`cluster-NNN-<class>.test` convention).
    pub repro_name: String,
    /// The minimized repro, DuckDB-flavor SLT text. Empty for a
    /// *tombstone*: a cluster whose failure never reproduced standalone
    /// (recorded so incremental triage does not re-probe it every run).
    pub repro_text: String,
    /// Whether the repro re-failed standalone with the same signature
    /// when it was minimized (triage's verification probe).
    pub reproduced: bool,
    /// Donor suite of the originating cell.
    pub suite: SuiteKind,
    /// Host engine of the originating cell.
    pub host: EngineDialect,
    /// Which matrix arm observed it.
    pub arm: BugArm,
    /// Verbatim vs translated execution (with the dialect pair).
    pub translation: TranslationMode,
    /// The originating cell's per-rule translation counters at store
    /// time — which rewrites were live when this bug surfaced.
    pub rule_counters: TranslationCounts,
    /// The resolved donor environment the repro needs (generation
    /// mutates the suite environment, so the canonical per-suite one is
    /// not sufficient).
    pub environment: DonorEnvironment,
    /// ddmin probes spent minimizing.
    pub probes: usize,
    /// Records in the exemplar file before reduction.
    pub records_before: usize,
    /// Records in the minimized repro.
    pub records_after: usize,
    /// [`squality_engine::ENGINE_SEMANTICS_VERSION`] the entry was last
    /// verified against; a bump marks it stale for re-verification.
    pub semantics_version: u32,
    /// Study fingerprint that first stored this signature.
    pub first_seen: String,
    /// Study fingerprint that most recently observed it.
    pub last_seen: String,
}

/// Content hash addressing an entry: the signature modulo its stability
/// annotation, so the rerun arm's verdict updates an entry in place
/// instead of forking it.
pub fn signature_key(sig: &FailureSignature) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str("squality-bug");
    h.write_str(&sig.normalized);
    h.write_str(&sig.statement);
    h.write_str(&format!("{:?}", sig.kind));
    match sig.error_kind {
        None => h.write_tag(0),
        Some(k) => {
            h.write_tag(1);
            h.write_str(&format!("{k:?}"));
        }
    }
    h.write_str(&format!("{:?}", sig.dependency));
    h.write_str(&format!("{:?}", sig.incompatibility));
    h.finish()
}

/// Lookup/store counters of one store instance over one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BugStoreStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries that existed but failed validation — a subset of `misses`.
    pub corrupt: u64,
}

/// The on-disk bug repository.
///
/// Cheap to construct; share one per run via [`BugStore::shared`]. All
/// methods take `&self` and are thread-safe: writes are atomic renames
/// of complete entries, so racing workers both leave a valid file.
pub struct BugStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
}

impl std::fmt::Debug for BugStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BugStore").field("root", &self.root).finish_non_exhaustive()
    }
}

impl BugStore {
    /// A store rooted at `root` (created lazily on first write).
    pub fn new(root: impl Into<PathBuf>) -> BugStore {
        BugStore {
            root: root.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// [`BugStore::new`] wrapped for sharing across triage workers.
    pub fn shared(root: impl Into<PathBuf>) -> Arc<BugStore> {
        Arc::new(BugStore::new(root))
    }

    /// The conventional store location: `.squality-bugs/` under the
    /// current directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from(".squality-bugs")
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        // Shard by the key's top byte to keep directories small.
        self.root
            .join(format!("v{STORE_VERSION}"))
            .join(format!("{:02x}", key >> 56))
            .join(format!("{key:016x}.bug"))
    }

    /// Fetch the entry for a signature (modulo stability). Any failure —
    /// absent entry, version mismatch, truncation, garbage — is a miss,
    /// never an error.
    pub fn lookup(&self, sig: &FailureSignature) -> Option<BugEntry> {
        self.lookup_key(signature_key(sig))
    }

    /// Fetch an entry by its key directly (CLI `bugs show`).
    pub fn lookup_key(&self, key: u64) -> Option<BugEntry> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&text) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist one entry atomically under its signature key: complete
    /// temp file, then rename. IO failures are swallowed — a store that
    /// cannot write simply never hits.
    pub fn store(&self, entry: &BugEntry) {
        let key = signature_key(&entry.signature);
        let path = self.entry_path(key);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, encode_entry(key, entry)).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &path).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Store `entry`, preserving an existing entry's `first_seen`
    /// fingerprint. Returns `true` when the signature was new.
    pub fn upsert(&self, entry: &BugEntry) -> bool {
        match self.lookup(&entry.signature) {
            Some(existing) => {
                let mut merged = entry.clone();
                merged.first_seen = existing.first_seen;
                self.store(&merged);
                false
            }
            None => {
                self.store(entry);
                true
            }
        }
    }

    /// Every valid entry on disk, sorted by key — the deterministic
    /// iteration order for listings and replay.
    pub fn entries(&self) -> Vec<(u64, BugEntry)> {
        let mut out = Vec::new();
        for path in self.entry_files() {
            let Ok(text) = std::fs::read_to_string(&path) else { continue };
            let Some(entry) = decode_entry(&text) else { continue };
            let Some(key) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            else {
                continue;
            };
            out.push((key, entry));
        }
        out.sort_by_key(|(key, _)| *key);
        out
    }

    /// Delete one entry. Returns `true` if it existed.
    pub fn remove(&self, key: u64) -> bool {
        std::fs::remove_file(self.entry_path(key)).is_ok()
    }

    /// Drop every entry whose semantics version is not `current` and
    /// every unreadable file. Returns `(removed, kept)`.
    pub fn gc(&self, current: u32) -> (usize, usize) {
        let mut removed = 0;
        let mut kept = 0;
        for path in self.entry_files() {
            let stale = match std::fs::read_to_string(&path) {
                Ok(text) => match decode_entry(&text) {
                    Some(entry) => entry.semantics_version != current,
                    None => true,
                },
                Err(_) => true,
            };
            if stale && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            } else {
                kept += 1;
            }
        }
        (removed, kept)
    }

    /// Copy every entry `other` has that this store lacks (by key).
    /// Returns `(imported, skipped)`.
    pub fn import(&self, other: &BugStore) -> (usize, usize) {
        let mut imported = 0;
        let mut skipped = 0;
        for (key, entry) in other.entries() {
            if self.lookup_key(key).is_some() {
                skipped += 1;
            } else {
                self.store(&entry);
                imported += 1;
            }
        }
        (imported, skipped)
    }

    /// Snapshot of this instance's lookup/store counters.
    pub fn stats(&self) -> BugStoreStats {
        BugStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// `(entry count, total bytes)` on disk.
    pub fn disk_usage(&self) -> (usize, u64) {
        let paths = self.entry_files();
        let bytes = paths.iter().filter_map(|p| std::fs::metadata(p).ok()).map(|m| m.len()).sum();
        (paths.len(), bytes)
    }

    /// Delete the entire store directory.
    pub fn clear(&self) -> std::io::Result<()> {
        match std::fs::remove_dir_all(&self.root) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    fn entry_files(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "bug") {
                    out.push(path);
                }
            }
        }
        out.sort();
        out
    }
}

// --- entry codec -----------------------------------------------------------
//
// Same discipline as the result cache: hand-rolled line-based text, one
// file per entry, escaped free-form strings, END terminator rejecting
// truncated writes. Layout:
//
//   squality-bug-store v<STORE_VERSION>
//   K <key>                (16 hex digits, double-checked against the name)
//   S <signature>          (sigcodec line; stability folded in)
//   N <repro name>
//   C <suite> <host> <arm> <semver> <probes> <before> <after> <reproduced>
//   M V | M X <from> <to>  (translation mode, text-dialect tags)
//   T <translation counts> (sigcodec payload)
//   F <first-seen> / L <last-seen>
//   ED <n>; then per data file: d <path> <m> + m × x <line>
//   EX <n>; then n × e <extension>
//   ES <n>; then n × s <setup sql>
//   R <n>; then n × r <repro line>
//   END

fn suite_tag(s: SuiteKind) -> u8 {
    match s {
        SuiteKind::Slt => 0,
        SuiteKind::Duckdb => 1,
        SuiteKind::PgRegress => 2,
        SuiteKind::MysqlTest => 3,
    }
}

fn parse_suite(tag: &str) -> Option<SuiteKind> {
    Some(match tag {
        "0" => SuiteKind::Slt,
        "1" => SuiteKind::Duckdb,
        "2" => SuiteKind::PgRegress,
        "3" => SuiteKind::MysqlTest,
        _ => return None,
    })
}

fn host_tag(d: EngineDialect) -> u8 {
    match d {
        EngineDialect::Sqlite => 0,
        EngineDialect::Postgres => 1,
        EngineDialect::Duckdb => 2,
        EngineDialect::Mysql => 3,
    }
}

fn parse_host(tag: &str) -> Option<EngineDialect> {
    Some(match tag {
        "0" => EngineDialect::Sqlite,
        "1" => EngineDialect::Postgres,
        "2" => EngineDialect::Duckdb,
        "3" => EngineDialect::Mysql,
        _ => return None,
    })
}

fn arm_tag(a: BugArm) -> u8 {
    match a {
        BugArm::DonorBare => 0,
        BugArm::Verbatim => 1,
        BugArm::Translated => 2,
    }
}

fn parse_arm(tag: &str) -> Option<BugArm> {
    Some(match tag {
        "0" => BugArm::DonorBare,
        "1" => BugArm::Verbatim,
        "2" => BugArm::Translated,
        _ => return None,
    })
}

fn text_dialect_tag(d: TextDialect) -> u8 {
    match d {
        TextDialect::Sqlite => 0,
        TextDialect::Postgres => 1,
        TextDialect::Duckdb => 2,
        TextDialect::Mysql => 3,
        TextDialect::Generic => 4,
    }
}

fn parse_text_dialect(tag: &str) -> Option<TextDialect> {
    Some(match tag {
        "0" => TextDialect::Sqlite,
        "1" => TextDialect::Postgres,
        "2" => TextDialect::Duckdb,
        "3" => TextDialect::Mysql,
        "4" => TextDialect::Generic,
        _ => return None,
    })
}

fn encode_entry(key: u64, entry: &BugEntry) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!("squality-bug-store v{STORE_VERSION}\n"));
    out.push_str(&format!("K {key:016x}\n"));
    // The stability verdict rides inside the signature line on disk (the
    // codec already carries the field); in memory the two are split so
    // the signature stays a pre-annotation clustering key.
    let mut sig = entry.signature.clone();
    sig.stability = entry.stability.clone();
    out.push_str(&format!("S {}\n", encode_signature(&sig)));
    out.push_str(&format!("N {}\n", escape(&entry.repro_name)));
    out.push_str(&format!(
        "C {} {} {} {} {} {} {} {}\n",
        suite_tag(entry.suite),
        host_tag(entry.host),
        arm_tag(entry.arm),
        entry.semantics_version,
        entry.probes,
        entry.records_before,
        entry.records_after,
        entry.reproduced as u8,
    ));
    match entry.translation {
        TranslationMode::Verbatim => out.push_str("M V\n"),
        TranslationMode::Translated { from, to } => {
            out.push_str(&format!("M X {} {}\n", text_dialect_tag(from), text_dialect_tag(to)));
        }
    }
    out.push_str(&format!("T {}\n", encode_translation_counts(&entry.rule_counters)));
    out.push_str(&format!("F {}\n", escape(&entry.first_seen)));
    out.push_str(&format!("L {}\n", escape(&entry.last_seen)));
    let env = &entry.environment;
    out.push_str(&format!("ED {}\n", env.data_files.len()));
    for (path, lines) in &env.data_files {
        out.push_str(&format!("d {} {}\n", escape(path), lines.len()));
        for line in lines {
            out.push_str(&format!("x {}\n", escape(line)));
        }
    }
    out.push_str(&format!("EX {}\n", env.extensions.len()));
    for ext in &env.extensions {
        out.push_str(&format!("e {}\n", escape(ext)));
    }
    out.push_str(&format!("ES {}\n", env.setup_sql.len()));
    for sql in &env.setup_sql {
        out.push_str(&format!("s {}\n", escape(sql)));
    }
    let repro_lines: Vec<&str> =
        if entry.repro_text.is_empty() { Vec::new() } else { entry.repro_text.lines().collect() };
    out.push_str(&format!("R {}\n", repro_lines.len()));
    for line in repro_lines {
        out.push_str(&format!("r {}\n", escape(line)));
    }
    out.push_str("END\n");
    out
}

fn decode_entry(text: &str) -> Option<BugEntry> {
    let mut lines = text.lines();
    if lines.next()? != format!("squality-bug-store v{STORE_VERSION}") {
        return None;
    }
    let key_line = lines.next()?.strip_prefix("K ")?;
    u64::from_str_radix(key_line, 16).ok()?;
    let mut signature = decode_signature(lines.next()?.strip_prefix("S ")?)?;
    let stability = signature.stability.take();
    let repro_name = unescape(lines.next()?.strip_prefix("N ")?)?;
    let mut c = lines.next()?.strip_prefix("C ")?.split(' ');
    let suite = parse_suite(c.next()?)?;
    let host = parse_host(c.next()?)?;
    let arm = parse_arm(c.next()?)?;
    let semantics_version: u32 = c.next()?.parse().ok()?;
    let probes: usize = c.next()?.parse().ok()?;
    let records_before: usize = c.next()?.parse().ok()?;
    let records_after: usize = c.next()?.parse().ok()?;
    let reproduced = c.next()? == "1";
    if c.next().is_some() {
        return None;
    }
    let m = lines.next()?.strip_prefix("M ")?;
    let translation = if m == "V" {
        TranslationMode::Verbatim
    } else {
        let mut parts = m.strip_prefix("X ")?.split(' ');
        let from = parse_text_dialect(parts.next()?)?;
        let to = parse_text_dialect(parts.next()?)?;
        TranslationMode::Translated { from, to }
    };
    let rule_counters = decode_translation_counts(lines.next()?.strip_prefix("T ")?)?;
    let first_seen = unescape(lines.next()?.strip_prefix("F ")?)?;
    let last_seen = unescape(lines.next()?.strip_prefix("L ")?)?;
    let n_data: usize = lines.next()?.strip_prefix("ED ")?.parse().ok()?;
    let mut data_files = Vec::with_capacity(n_data);
    for _ in 0..n_data {
        let (path, m) = lines.next()?.strip_prefix("d ")?.rsplit_once(' ')?;
        let m: usize = m.parse().ok()?;
        let path = unescape(path)?;
        let rows = (0..m)
            .map(|_| unescape(lines.next()?.strip_prefix("x ")?))
            .collect::<Option<Vec<String>>>()?;
        data_files.push((path, rows));
    }
    let n_ext: usize = lines.next()?.strip_prefix("EX ")?.parse().ok()?;
    let extensions = (0..n_ext)
        .map(|_| unescape(lines.next()?.strip_prefix("e ")?))
        .collect::<Option<Vec<String>>>()?;
    let n_setup: usize = lines.next()?.strip_prefix("ES ")?.parse().ok()?;
    let setup_sql = (0..n_setup)
        .map(|_| unescape(lines.next()?.strip_prefix("s ")?))
        .collect::<Option<Vec<String>>>()?;
    let n_repro: usize = lines.next()?.strip_prefix("R ")?.parse().ok()?;
    let repro_lines = (0..n_repro)
        .map(|_| unescape(lines.next()?.strip_prefix("r ")?))
        .collect::<Option<Vec<String>>>()?;
    let repro_text = if repro_lines.is_empty() {
        String::new()
    } else {
        // Repro files are newline-terminated (writer convention).
        let mut text = repro_lines.join("\n");
        text.push('\n');
        text
    };
    if lines.next()? != "END" {
        return None;
    }
    Some(BugEntry {
        signature,
        stability,
        repro_name,
        repro_text,
        reproduced,
        suite,
        host,
        arm,
        translation,
        rule_counters,
        environment: DonorEnvironment { data_files, extensions, setup_sql },
        probes,
        records_before,
        records_after,
        semantics_version,
        first_seen,
        last_seen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use squality_engine::ErrorKind;
    use squality_runner::{DependencyClass, FailKind, IncompatibilityClass, PerturbationAxis};

    fn temp_store(tag: &str) -> BugStore {
        let dir = std::env::temp_dir()
            .join(format!("squality-bugstore-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BugStore::new(dir)
    }

    fn sample_signature(statement: &str) -> FailureSignature {
        FailureSignature {
            normalized: "conversion: cannot cast 'x'\tto INTEGER".into(),
            statement: statement.into(),
            kind: FailKind::UnexpectedError,
            error_kind: Some(ErrorKind::Conversion),
            dependency: DependencyClass::SetUp,
            incompatibility: IncompatibilityClass::Types,
            stability: None,
        }
    }

    fn sample_entry() -> BugEntry {
        let mut rule_counters = TranslationCounts::default();
        rule_counters.applied[1] = 4;
        rule_counters.translated = 9;
        BugEntry {
            signature: sample_signature("SELECT"),
            stability: Some(Stability::PerturbationSensitive {
                axis: PerturbationAxis::FaultProfile,
            }),
            repro_name: "cluster-001-types.test".to_string(),
            repro_text:
                "statement ok\nCREATE TABLE t(a INTEGER)\n\nquery I\nSELECT a FROM t\n----\n\n"
                    .to_string(),
            reproduced: true,
            suite: SuiteKind::PgRegress,
            host: EngineDialect::Duckdb,
            arm: BugArm::Translated,
            translation: TranslationMode::Translated {
                from: TextDialect::Postgres,
                to: TextDialect::Duckdb,
            },
            rule_counters,
            environment: DonorEnvironment {
                data_files: vec![(
                    "data/t.csv".to_string(),
                    vec!["1,a".to_string(), "2,b".to_string()],
                )],
                extensions: vec!["regresslib".to_string()],
                setup_sql: vec!["CREATE TABLE setup_tbl0(k INTEGER)".to_string()],
            },
            probes: 12,
            records_before: 40,
            records_after: 2,
            semantics_version: 1,
            first_seen: "a1b2c3d4e5f60718".to_string(),
            last_seen: "a1b2c3d4e5f60718".to_string(),
        }
    }

    #[test]
    fn entry_codec_roundtrips() {
        let entry = sample_entry();
        let key = signature_key(&entry.signature);
        let decoded = decode_entry(&encode_entry(key, &entry)).expect("roundtrip");
        assert_eq!(decoded, entry);
    }

    #[test]
    fn entry_codec_roundtrips_tombstone_and_verbatim() {
        let mut entry = sample_entry();
        entry.repro_text = String::new();
        entry.reproduced = false;
        entry.stability = None;
        entry.translation = TranslationMode::Verbatim;
        entry.arm = BugArm::DonorBare;
        entry.environment = DonorEnvironment::default();
        let key = signature_key(&entry.signature);
        let decoded = decode_entry(&encode_entry(key, &entry)).expect("roundtrip");
        assert_eq!(decoded, entry);
    }

    #[test]
    fn signature_key_ignores_stability_only() {
        let base = sample_signature("SELECT");
        let mut annotated = base.clone();
        annotated.stability = Some(Stability::Stable);
        assert_eq!(signature_key(&base), signature_key(&annotated));
        let other = sample_signature("INSERT");
        assert_ne!(signature_key(&base), signature_key(&other));
    }

    #[test]
    fn store_lookup_and_upsert_preserve_first_seen() {
        let store = temp_store("upsert");
        let entry = sample_entry();
        assert!(store.lookup(&entry.signature).is_none());
        assert!(store.upsert(&entry), "first store is new");
        let mut updated = entry.clone();
        updated.first_seen = "ffffffffffffffff".to_string();
        updated.last_seen = "ffffffffffffffff".to_string();
        assert!(!store.upsert(&updated), "second store is an update");
        let got = store.lookup(&entry.signature).expect("stored entry hits");
        assert_eq!(got.first_seen, entry.first_seen, "first_seen preserved");
        assert_eq!(got.last_seen, "ffffffffffffffff", "last_seen updated");
        let stats = store.stats();
        assert_eq!(stats.stores, 2);
        assert!(stats.hits >= 2);
        store.clear().unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let store = temp_store("corrupt");
        let entry = sample_entry();
        store.store(&entry);
        let path = store.entry_files().pop().expect("one entry");
        std::fs::write(&path, "not an entry\n").unwrap();
        assert!(store.lookup(&entry.signature).is_none());
        assert_eq!(store.stats().corrupt, 1);
        store.clear().unwrap();
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let store = temp_store("version");
        let entry = sample_entry();
        store.store(&entry);
        let path = store.entry_files().pop().expect("one entry");
        let old = std::fs::read_to_string(&path).unwrap();
        let bumped =
            old.replacen(&format!("v{STORE_VERSION}"), &format!("v{}", STORE_VERSION + 1), 1);
        std::fs::write(&path, bumped).unwrap();
        assert!(store.lookup(&entry.signature).is_none(), "future-version entry must miss");
        store.clear().unwrap();
    }

    #[test]
    fn entries_sorted_by_key_and_remove() {
        let store = temp_store("entries");
        let a = sample_entry();
        let mut b = sample_entry();
        b.signature = sample_signature("INSERT");
        store.store(&a);
        store.store(&b);
        let listed = store.entries();
        assert_eq!(listed.len(), 2);
        assert!(listed[0].0 < listed[1].0, "sorted by key");
        assert!(store.remove(listed[0].0));
        assert!(!store.remove(listed[0].0), "second remove is a no-op");
        assert_eq!(store.entries().len(), 1);
        store.clear().unwrap();
    }

    #[test]
    fn gc_drops_stale_semantics_versions() {
        let store = temp_store("gc");
        let current = sample_entry();
        let mut stale = sample_entry();
        stale.signature = sample_signature("UPDATE");
        stale.semantics_version = 0;
        store.store(&current);
        store.store(&stale);
        let (removed, kept) = store.gc(current.semantics_version);
        assert_eq!((removed, kept), (1, 1));
        assert!(store.lookup(&current.signature).is_some());
        assert!(store.lookup(&stale.signature).is_none());
        store.clear().unwrap();
    }

    #[test]
    fn import_copies_only_missing_entries() {
        let src = temp_store("import-src");
        let dst = temp_store("import-dst");
        let shared = sample_entry();
        let mut only_src = sample_entry();
        only_src.signature = sample_signature("DELETE");
        src.store(&shared);
        src.store(&only_src);
        dst.store(&shared);
        let (imported, skipped) = dst.import(&src);
        assert_eq!((imported, skipped), (1, 1));
        assert_eq!(dst.entries().len(), 2);
        src.clear().unwrap();
        dst.clear().unwrap();
    }

    #[test]
    fn concurrent_writers_racing_one_key_leave_a_valid_entry() {
        let store = std::sync::Arc::new(temp_store("race"));
        let entry = sample_entry();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = std::sync::Arc::clone(&store);
                let entry = entry.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        store.store(&entry);
                    }
                });
            }
        });
        let got = store.lookup(&entry.signature).expect("valid entry survives the race");
        assert_eq!(got, entry);
        assert_eq!(store.disk_usage().0, 1);
        store.clear().unwrap();
    }
}
