//! Cross-dialect statement translation.
//!
//! The paper's RQ4 finds that most cross-DBMS failures are *mundane*:
//! unsupported syntax, type-name and function-name differences — not real
//! bugs. This module implements the "what if we adapt?" counterfactual: a
//! rule-driven rewrite of a donor-dialect AST into a form the host dialect
//! accepts, leaving genuinely untranslatable constructs untouched (they
//! keep failing on the host, which is the honest outcome).
//!
//! The pipeline is `parse(donor) → rewrite(AST) → print(host)`:
//!
//! * parsing under the **donor** dialect accepts the donor's syntax
//!   (`::` casts, `DIV`, struct literals, ...);
//! * the rewrite applies the rule table below, counting every decision in a
//!   shared [`TranslationStats`] (one atomic counter pair per rule);
//! * printing emits canonical SQL (see [`crate::print`]), which by itself
//!   translates notational differences such as the `::` cast style.
//!
//! A same-dialect pair is the identity: [`translate_sql`] returns `None`
//! and the caller keeps the original text byte-for-byte, so a translated
//! run on the donor's own engine equals a verbatim run exactly.

use crate::ast::*;
use crate::parser::parse_statement;
use crate::print::print_statement;
use squality_sqltext::TextDialect;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One family of rewrites; rows of the DESIGN.md rule table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TranslationRule {
    /// Type-name mapping: `HUGEINT`→`BIGINT`, `SERIAL`→`INTEGER`,
    /// `MEDIUMINT`→`INTEGER`, bare `VARCHAR`→`VARCHAR(255)` for MySQL.
    TypeName,
    /// Function renames and emulations: `pg_typeof`↔`typeof`,
    /// `ifnull`→`coalesce`, `if`↔`iif`/`CASE`, `len`→`length`, ...
    FunctionName,
    /// MySQL `DIV` → `/` on hosts whose `/` is integer division.
    IntegerDivision,
    /// `||` → `concat(...)` on MySQL, `concat(...)` → `||` on SQLite.
    ConcatOperator,
    /// `TRUE`/`FALSE` → `1`/`0` on engines with numeric booleans.
    BooleanLiteral,
    /// `PRAGMA`↔`SET` between the embedded engines and the servers.
    ConfigStatement,
    /// `ILIKE` → `lower() LIKE lower()` where ILIKE does not parse.
    LikeCase,
}

impl TranslationRule {
    /// Human label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            TranslationRule::TypeName => "type names",
            TranslationRule::FunctionName => "function renames",
            TranslationRule::IntegerDivision => "integer division",
            TranslationRule::ConcatOperator => "concat operator",
            TranslationRule::BooleanLiteral => "boolean literals",
            TranslationRule::ConfigStatement => "config statements",
            TranslationRule::LikeCase => "ILIKE emulation",
        }
    }

    /// All rules, in report order.
    pub const ALL: [TranslationRule; 7] = [
        TranslationRule::TypeName,
        TranslationRule::FunctionName,
        TranslationRule::IntegerDivision,
        TranslationRule::ConcatOperator,
        TranslationRule::BooleanLiteral,
        TranslationRule::ConfigStatement,
        TranslationRule::LikeCase,
    ];
}

const N_RULES: usize = TranslationRule::ALL.len();

/// Thread-safe per-rule counters, shared across scheduler workers the same
/// way the plan cache is. `applied` counts rewrites performed, `skipped`
/// counts constructs a rule recognised as host-incompatible but could not
/// rewrite; `translated`/`passthrough` count whole statements.
#[derive(Debug, Default)]
pub struct TranslationStats {
    applied: [AtomicU64; N_RULES],
    skipped: [AtomicU64; N_RULES],
    translated: AtomicU64,
    passthrough: AtomicU64,
}

impl TranslationStats {
    /// Fresh zeroed counters.
    pub fn new() -> TranslationStats {
        TranslationStats::default()
    }

    fn record(&self, rule: TranslationRule, applied: bool) {
        let slot = rule as usize;
        if applied {
            self.applied[slot].fetch_add(1, Ordering::Relaxed);
        } else {
            self.skipped[slot].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold a snapshot into these counters (cache hits replay the entry's
    /// recorded delta).
    pub fn add(&self, delta: &TranslationCounts) {
        for i in 0..N_RULES {
            self.applied[i].fetch_add(delta.applied[i], Ordering::Relaxed);
            self.skipped[i].fetch_add(delta.skipped[i], Ordering::Relaxed);
        }
        self.translated.fetch_add(delta.translated, Ordering::Relaxed);
        self.passthrough.fetch_add(delta.passthrough, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn counts(&self) -> TranslationCounts {
        let mut c = TranslationCounts::default();
        for i in 0..N_RULES {
            c.applied[i] = self.applied[i].load(Ordering::Relaxed);
            c.skipped[i] = self.skipped[i].load(Ordering::Relaxed);
        }
        c.translated = self.translated.load(Ordering::Relaxed);
        c.passthrough = self.passthrough.load(Ordering::Relaxed);
        c
    }
}

/// A plain-value snapshot of [`TranslationStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationCounts {
    /// Rewrites performed, indexed by [`TranslationRule`] order.
    pub applied: [u64; N_RULES],
    /// Host-incompatible constructs left untranslated, same indexing.
    pub skipped: [u64; N_RULES],
    /// Statement executions that went through parse → rewrite → print
    /// (cache hits replay their stored delta, so memoisation never changes
    /// the totals).
    pub translated: u64,
    /// Statement executions passed through verbatim (donor-side parse
    /// failure).
    pub passthrough: u64,
}

impl TranslationCounts {
    /// Applied count for one rule.
    pub fn applied_for(&self, rule: TranslationRule) -> u64 {
        self.applied[rule as usize]
    }

    /// Skipped count for one rule.
    pub fn skipped_for(&self, rule: TranslationRule) -> u64 {
        self.skipped[rule as usize]
    }

    /// Total rewrites across all rules.
    pub fn applied_total(&self) -> u64 {
        self.applied.iter().sum()
    }

    /// Total skips across all rules.
    pub fn skipped_total(&self) -> u64 {
        self.skipped.iter().sum()
    }

    /// Accumulate another snapshot into this one.
    pub fn merge(&mut self, other: &TranslationCounts) {
        for i in 0..N_RULES {
            self.applied[i] += other.applied[i];
            self.skipped[i] += other.skipped[i];
        }
        self.translated += other.translated;
        self.passthrough += other.passthrough;
    }
}

/// Translate one statement text from the donor dialect to the host dialect.
///
/// Returns `None` when the text should run verbatim: same-dialect pairs
/// (identity by construction — the caller keeps the original bytes) and
/// statements that do not parse under the donor dialect (they were going to
/// fail anyway; translation must not invent behaviour).
pub fn translate_sql(
    sql: &str,
    from: TextDialect,
    to: TextDialect,
    stats: &TranslationStats,
) -> Option<String> {
    if from == to {
        return None;
    }
    match parse_statement(sql, from) {
        Err(_) => {
            stats.passthrough.fetch_add(1, Ordering::Relaxed);
            None
        }
        Ok(mut stmt) => {
            translate_statement(&mut stmt, to, stats);
            stats.translated.fetch_add(1, Ordering::Relaxed);
            Some(print_statement(&stmt, to))
        }
    }
}

const CACHE_SHARDS: usize = 8;

/// Admission bound per shard, mirroring the statement-plan cache: loop
/// variable substitution mints a distinct text per iteration, so an
/// unbounded map would grow linearly with loop trip counts. Overflow texts
/// simply re-translate.
const MAX_ENTRIES_PER_SHARD: usize = 8192;

/// One memoised translation: the output text (or the pass-through
/// decision) plus the counter delta its compute produced, replayed into
/// the shared stats on every hit so counters stay per-execution.
type CacheEntry = (Option<Arc<str>>, TranslationCounts);

/// Memoised translation: statement text → translated text, the donor-side
/// analogue of the engine's statement-plan cache. An SLT loop that replays
/// one statement hundreds of times parses and prints it once per suite
/// run, not once per execution. Sharded by text hash so scheduler workers
/// do not serialise on one lock.
///
/// A cache instance serves a single `(from, to)` dialect pair — the key is
/// the statement text alone — which is exactly the runner's situation: one
/// `TranslationMode` per runner, one cache per suite × host run.
#[derive(Debug, Default)]
pub struct TranslationCache {
    shards: [Mutex<HashMap<String, CacheEntry>>; CACHE_SHARDS],
}

impl TranslationCache {
    /// Fresh empty cache.
    pub fn new() -> TranslationCache {
        TranslationCache::default()
    }

    /// Memoised [`translate_sql`]. Counters in `stats` record exactly what
    /// uncached translation would: each entry stores the counter delta its
    /// compute produced and replays it on every hit, so the totals are
    /// per-execution and independent of cache admission, hit order, and
    /// worker count.
    pub fn translate_sql(
        &self,
        sql: &str,
        from: TextDialect,
        to: TextDialect,
        stats: &TranslationStats,
    ) -> Option<String> {
        if from == to {
            return None;
        }
        let mut hasher = DefaultHasher::new();
        sql.hash(&mut hasher);
        let shard = hasher.finish() as usize % CACHE_SHARDS;
        let mut map = self.shards[shard].lock().expect("translation cache poisoned");
        if let Some((out, delta)) = map.get(sql) {
            stats.add(delta);
            return out.as_deref().map(str::to_string);
        }
        // Miss: compute into a scratch recorder so the delta can be stored
        // with the entry, then fold it into the shared stats.
        let scratch = TranslationStats::new();
        let out = translate_sql(sql, from, to, &scratch);
        let delta = scratch.counts();
        stats.add(&delta);
        if map.len() < MAX_ENTRIES_PER_SHARD {
            map.insert(sql.to_string(), (out.as_deref().map(Arc::from), delta));
        }
        out
    }
}

/// Rewrite a donor AST in place for the host dialect.
pub fn translate_statement(stmt: &mut Stmt, to: TextDialect, stats: &TranslationStats) {
    Translator { to, stats }.stmt(stmt);
}

struct Translator<'a> {
    to: TextDialect,
    stats: &'a TranslationStats,
}

impl Translator<'_> {
    fn stmt(&self, stmt: &mut Stmt) {
        // Statement-level rules first: PRAGMA↔SET.
        self.config_statement(stmt);
        match stmt {
            Stmt::Select(q) | Stmt::Values(q) => self.query(q),
            Stmt::Insert(ins) => match &mut ins.source {
                InsertSource::Values(rows) => self.rows(rows),
                InsertSource::Query(q) => self.query(q),
                InsertSource::DefaultValues => {}
            },
            Stmt::Update(u) => {
                for (_, e) in &mut u.assignments {
                    self.expr(e);
                }
                if let Some(w) = &mut u.where_clause {
                    self.expr(w);
                }
            }
            Stmt::Delete(d) => {
                if let Some(w) = &mut d.where_clause {
                    self.expr(w);
                }
            }
            Stmt::CreateTable(ct) => {
                for def in &mut ct.columns {
                    self.type_name(&mut def.type_name);
                    if let Some(e) = &mut def.default {
                        self.expr(e);
                    }
                }
                if let Some(q) = &mut ct.as_query {
                    self.query(q);
                }
            }
            Stmt::AlterTable { action: AlterTableAction::AddColumn(def), .. } => {
                self.type_name(&mut def.type_name);
                if let Some(e) = &mut def.default {
                    self.expr(e);
                }
            }
            Stmt::CreateView { query, .. } => self.query(query),
            Stmt::Explain { inner, .. } => self.stmt(inner),
            _ => {}
        }
    }

    /// `PRAGMA` ↔ `SET`. DuckDB treats the two forms interchangeably; the
    /// rewrite carries a donor configuration statement into whichever form
    /// the host parses. On SQLite the gain is real: unknown pragmas are
    /// silently ignored, so a donor `SET` becomes a harmless no-op instead
    /// of a syntax error (the paper flags exactly this SQLite behaviour).
    fn config_statement(&self, stmt: &mut Stmt) {
        match stmt {
            Stmt::Pragma { name, value }
                if matches!(self.to, TextDialect::Postgres | TextDialect::Mysql) =>
            {
                match value {
                    Some(v) => {
                        *stmt = Stmt::Set {
                            name: std::mem::take(name),
                            value: SetValue::Ident(std::mem::take(v)),
                        };
                        self.stats.record(TranslationRule::ConfigStatement, true);
                    }
                    // A value-less PRAGMA is a read; there is no SET form.
                    None => self.stats.record(TranslationRule::ConfigStatement, false),
                }
            }
            Stmt::Set { name, value } if self.to == TextDialect::Sqlite => {
                if name.starts_with('@') {
                    self.stats.record(TranslationRule::ConfigStatement, false);
                    return;
                }
                let rendered = match value {
                    SetValue::Ident(v) => Some(std::mem::take(v)),
                    SetValue::Expr(Expr::Literal(l)) => match l {
                        Literal::Integer(v) => Some(v.to_string()),
                        Literal::Float(v) => Some(v.to_string()),
                        Literal::String(s) => Some(std::mem::take(s)),
                        Literal::Boolean(b) => Some(if *b { "1" } else { "0" }.to_string()),
                        Literal::Null => None,
                        Literal::Blob(_) => None,
                    },
                    SetValue::Expr(_) | SetValue::Default => None,
                };
                match rendered {
                    Some(v) => {
                        *stmt = Stmt::Pragma { name: std::mem::take(name), value: Some(v) };
                        self.stats.record(TranslationRule::ConfigStatement, true);
                    }
                    None => self.stats.record(TranslationRule::ConfigStatement, false),
                }
            }
            _ => {}
        }
    }

    fn query(&self, q: &mut SelectStmt) {
        if let Some(w) = &mut q.with {
            for cte in &mut w.ctes {
                self.query(&mut cte.query);
            }
        }
        self.set_expr(&mut q.body);
        for item in &mut q.order_by {
            self.expr(&mut item.expr);
        }
        if let Some(l) = &mut q.limit {
            self.expr(l);
        }
        if let Some(o) = &mut q.offset {
            self.expr(o);
        }
    }

    fn set_expr(&self, body: &mut SetExpr) {
        match body {
            SetExpr::Select(core) => {
                for item in &mut core.projection {
                    if let SelectItem::Expr { expr, .. } = item {
                        self.expr(expr);
                    }
                }
                for t in &mut core.from {
                    self.table_ref(t);
                }
                if let Some(w) = &mut core.where_clause {
                    self.expr(w);
                }
                for e in &mut core.group_by {
                    self.expr(e);
                }
                if let Some(h) = &mut core.having {
                    self.expr(h);
                }
            }
            SetExpr::Values(rows) => self.rows(rows),
            SetExpr::Query(q) => self.query(q),
            SetExpr::SetOp { left, right, .. } => {
                self.set_expr(left);
                self.set_expr(right);
            }
        }
    }

    fn table_ref(&self, t: &mut TableRef) {
        match t {
            TableRef::Named { .. } => {}
            TableRef::Subquery { query, .. } => self.query(query),
            TableRef::Function { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            TableRef::Join { left, right, on, .. } => {
                self.table_ref(left);
                self.table_ref(right);
                if let Some(e) = on {
                    self.expr(e);
                }
            }
        }
    }

    fn rows(&self, rows: &mut [Vec<Expr>]) {
        for row in rows {
            for e in row {
                self.expr(e);
            }
        }
    }

    fn expr(&self, e: &mut Expr) {
        // Node-level rules that replace the whole expression come first.
        self.rewrite_node(e);
        match e {
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Binary { left, right, .. } => {
                self.expr(left);
                self.expr(right);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Cast { expr, ty } => {
                self.expr(expr);
                self.type_name(ty);
            }
            Expr::Case { operand, branches, else_branch } => {
                if let Some(op) = operand {
                    self.expr(op);
                }
                for (c, v) in branches {
                    self.expr(c);
                    self.expr(v);
                }
                if let Some(el) = else_branch {
                    self.expr(el);
                }
            }
            Expr::IsNull { expr, .. } => self.expr(expr),
            Expr::IsDistinctFrom { left, right, .. } => {
                self.expr(left);
                self.expr(right);
            }
            Expr::InList { expr, list, .. } => {
                self.expr(expr);
                for i in list {
                    self.expr(i);
                }
            }
            Expr::InSubquery { expr, query, .. } => {
                self.expr(expr);
                self.query(query);
            }
            Expr::Between { expr, low, high, .. } => {
                self.expr(expr);
                self.expr(low);
                self.expr(high);
            }
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr);
                self.expr(pattern);
            }
            Expr::Exists { query, .. } | Expr::Subquery(query) => self.query(query),
            Expr::Row(items) | Expr::Array(items) => {
                for i in items {
                    self.expr(i);
                }
            }
            Expr::Struct(fields) => {
                for (_, v) in fields {
                    self.expr(v);
                }
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Parameter(_) | Expr::Interval(_) => {}
        }
    }

    /// Apply expression-level rules to this node (not its children).
    fn rewrite_node(&self, e: &mut Expr) {
        match e {
            // MySQL `DIV` → `/` where `/` already divides integers
            // (SQLite, PostgreSQL: identical semantics). DuckDB's `/` is
            // decimal, so the rewrite would change results there: skip.
            Expr::Binary { op: op @ BinaryOp::IntDiv, .. } => match self.to {
                TextDialect::Sqlite | TextDialect::Postgres => {
                    *op = BinaryOp::Div;
                    self.stats.record(TranslationRule::IntegerDivision, true);
                }
                TextDialect::Duckdb => {
                    self.stats.record(TranslationRule::IntegerDivision, false);
                }
                _ => {}
            },
            // `||` reads as logical OR under MySQL's default SQL mode; the
            // portable spelling is concat().
            Expr::Binary { op: BinaryOp::Concat, left, right } if self.to == TextDialect::Mysql => {
                let args = vec![
                    std::mem::replace(&mut **left, Expr::Literal(Literal::Null)),
                    std::mem::replace(&mut **right, Expr::Literal(Literal::Null)),
                ];
                *e = Expr::Function { name: "concat".into(), args, distinct: false, star: false };
                self.stats.record(TranslationRule::ConcatOperator, true);
            }
            Expr::Literal(l @ Literal::Boolean(_))
                if matches!(self.to, TextDialect::Sqlite | TextDialect::Mysql) =>
            {
                let Literal::Boolean(b) = *l else { unreachable!() };
                *l = Literal::Integer(if b { 1 } else { 0 });
                self.stats.record(TranslationRule::BooleanLiteral, true);
            }
            // ILIKE does not parse on SQLite/MySQL; fold both sides.
            Expr::Like { expr, pattern, case_insensitive: ci @ true, .. }
                if matches!(self.to, TextDialect::Sqlite | TextDialect::Mysql) =>
            {
                *ci = false;
                wrap_lower(expr);
                wrap_lower(pattern);
                self.stats.record(TranslationRule::LikeCase, true);
            }
            Expr::Function { name, args, .. } => {
                let (name, argc) = (name.clone(), args.len());
                self.function(e, name, argc);
            }
            _ => {}
        }
    }

    /// Function renames and emulations. Unknown-but-donor-specific names
    /// with no host equivalent count as skipped.
    fn function(&self, e: &mut Expr, name: String, argc: usize) {
        let renamed: Option<&str> = match (name.as_str(), self.to) {
            ("pg_typeof", TextDialect::Sqlite) => Some("typeof"),
            ("typeof", TextDialect::Postgres) => Some("pg_typeof"),
            ("len", d) if d != TextDialect::Duckdb => Some("length"),
            ("char_length", _) => None,
            ("ifnull", TextDialect::Postgres | TextDialect::Duckdb) => Some("coalesce"),
            ("database", TextDialect::Postgres | TextDialect::Duckdb) => Some("current_database"),
            ("current_database", TextDialect::Mysql) => Some("database"),
            (
                "sqlite_version",
                TextDialect::Postgres | TextDialect::Duckdb | TextDialect::Mysql,
            ) => Some("version"),
            ("iif", TextDialect::Mysql) => Some("if"),
            ("if", TextDialect::Sqlite) => Some("iif"),
            _ => None,
        };
        if let Some(new_name) = renamed {
            if let Expr::Function { name, .. } = e {
                *name = new_name.to_string();
            }
            self.stats.record(TranslationRule::FunctionName, true);
            return;
        }
        // `if`/`iif` on hosts with neither form: CASE WHEN emulation.
        if (name == "if" || name == "iif")
            && matches!(self.to, TextDialect::Postgres | TextDialect::Duckdb)
            && argc == 3
        {
            let Expr::Function { args, .. } = e else { return };
            let mut it = args.drain(..);
            let (cond, then_v, else_v) =
                (it.next().expect("argc"), it.next().expect("argc"), it.next().expect("argc"));
            drop(it);
            *e = Expr::Case {
                operand: None,
                branches: vec![(cond, then_v)],
                else_branch: Some(Box::new(else_v)),
            };
            self.stats.record(TranslationRule::FunctionName, true);
            return;
        }
        // concat() on SQLite: fold into a `||` chain (SQLite has no
        // concat() but `||` concatenates natively).
        if name == "concat" && self.to == TextDialect::Sqlite && argc >= 2 {
            let Expr::Function { args, .. } = e else { return };
            let mut it = args.drain(..);
            let mut acc = it.next().expect("argc >= 2");
            for next in it.by_ref() {
                acc = Expr::Binary {
                    left: Box::new(acc),
                    op: BinaryOp::Concat,
                    right: Box::new(next),
                };
            }
            drop(it);
            *e = acc;
            self.stats.record(TranslationRule::ConcatOperator, true);
            return;
        }
        if is_untranslatable_function(&name, self.to) {
            self.stats.record(TranslationRule::FunctionName, false);
        }
    }

    /// Type-name mapping (the Table 6 "Types" class).
    fn type_name(&self, ty: &mut TypeName) {
        match ty {
            TypeName::Simple { name, params } => {
                let mapped = match (name.as_str(), self.to) {
                    ("HUGEINT" | "UBIGINT", d) if d != TextDialect::Duckdb => Some("BIGINT"),
                    ("UINTEGER", d) if d != TextDialect::Duckdb => Some("INTEGER"),
                    ("MEDIUMINT", d) if d != TextDialect::Mysql => Some("INTEGER"),
                    ("SERIAL", TextDialect::Sqlite | TextDialect::Duckdb) => Some("INTEGER"),
                    ("BIGSERIAL", TextDialect::Sqlite | TextDialect::Duckdb) => Some("BIGINT"),
                    _ => None,
                };
                if let Some(new_name) = mapped {
                    *name = new_name.to_string();
                    self.stats.record(TranslationRule::TypeName, true);
                } else if name == "VARCHAR" && params.is_empty() && self.to == TextDialect::Mysql {
                    // MySQL demands a length; 255 is the conventional cap.
                    params.push(255);
                    self.stats.record(TranslationRule::TypeName, true);
                }
            }
            TypeName::List(inner) => {
                if matches!(self.to, TextDialect::Sqlite | TextDialect::Mysql) {
                    // No array types on the host; nothing to map to.
                    self.stats.record(TranslationRule::TypeName, false);
                }
                self.type_name(inner);
            }
            TypeName::Struct(fields) | TypeName::Union(fields) => {
                if self.to != TextDialect::Duckdb {
                    self.stats.record(TranslationRule::TypeName, false);
                }
                for (_, t) in fields {
                    self.type_name(t);
                }
            }
        }
    }
}

fn wrap_lower(e: &mut Box<Expr>) {
    let inner = std::mem::replace(&mut **e, Expr::Literal(Literal::Null));
    **e = Expr::Function { name: "lower".into(), args: vec![inner], distinct: false, star: false };
}

/// Donor-specific functions with no equivalent on the host — recognised so
/// the skipped counter reflects genuinely untranslatable calls.
fn is_untranslatable_function(name: &str, to: TextDialect) -> bool {
    let duckdb_only = matches!(
        name,
        "median" | "quantile" | "range" | "list_value" | "struct_pack" | "list_contains"
    );
    let pg_only = matches!(
        name,
        "to_json"
            | "pg_table_size"
            | "has_column_privilege"
            | "quote_literal"
            | "quote_ident"
            | "pg_backend_pid"
            | "to_char"
    );
    let sqlite_only = matches!(name, "zeroblob" | "likelihood" | "likely" | "unlikely" | "quote");
    match to {
        TextDialect::Sqlite => duckdb_only || pg_only,
        TextDialect::Postgres => duckdb_only || sqlite_only,
        TextDialect::Duckdb => {
            sqlite_only
                || matches!(
                    name,
                    "to_json"
                        | "pg_table_size"
                        | "quote_literal"
                        | "quote_ident"
                        | "pg_backend_pid"
                        | "to_char"
                )
        }
        TextDialect::Mysql => {
            duckdb_only || pg_only || sqlite_only || matches!(name, "typeof" | "pg_typeof")
        }
        TextDialect::Generic => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(sql: &str, from: TextDialect, to: TextDialect) -> (Option<String>, TranslationCounts) {
        let stats = TranslationStats::new();
        let out = translate_sql(sql, from, to, &stats);
        (out, stats.counts())
    }

    #[test]
    fn same_dialect_is_identity() {
        let stats = TranslationStats::new();
        assert_eq!(
            translate_sql("SELECT 1::text", TextDialect::Postgres, TextDialect::Postgres, &stats),
            None
        );
        assert_eq!(stats.counts(), TranslationCounts::default());
    }

    #[test]
    fn unparsable_donor_text_passes_through() {
        let (out, counts) = tr("SELEC 1", TextDialect::Postgres, TextDialect::Sqlite);
        assert_eq!(out, None);
        assert_eq!(counts.passthrough, 1);
        assert_eq!(counts.translated, 0);
    }

    #[test]
    fn double_colon_cast_becomes_cast_call() {
        let (out, counts) = tr("SELECT 7::integer", TextDialect::Postgres, TextDialect::Sqlite);
        let out = out.unwrap();
        assert!(out.contains("CAST(7 AS INTEGER)"), "{out}");
        assert_eq!(counts.translated, 1);
        // Canonical printing handles `::`; no rule fires.
        assert_eq!(counts.applied_total(), 0);
        // And the output now parses on the host.
        assert!(parse_statement(&out, TextDialect::Sqlite).is_ok());
    }

    #[test]
    fn div_translates_to_integer_division_hosts_only() {
        let (out, counts) = tr("SELECT 62 DIV 2", TextDialect::Mysql, TextDialect::Sqlite);
        assert_eq!(out.unwrap(), "SELECT (62 / 2)");
        assert_eq!(counts.applied_for(TranslationRule::IntegerDivision), 1);
        let (out, counts) = tr("SELECT 62 DIV 2", TextDialect::Mysql, TextDialect::Duckdb);
        assert!(out.unwrap().contains("DIV"));
        assert_eq!(counts.skipped_for(TranslationRule::IntegerDivision), 1);
    }

    #[test]
    fn type_names_map_per_host() {
        let (out, counts) =
            tr("CREATE TABLE t(a HUGEINT, b VARCHAR)", TextDialect::Duckdb, TextDialect::Mysql);
        let out = out.unwrap();
        assert!(out.contains("BIGINT"), "{out}");
        assert!(out.contains("VARCHAR(255)"), "{out}");
        assert_eq!(counts.applied_for(TranslationRule::TypeName), 2);
        let (out, _) = tr("CREATE TABLE t(a SERIAL)", TextDialect::Postgres, TextDialect::Duckdb);
        assert!(out.unwrap().contains("INTEGER"));
    }

    #[test]
    fn struct_types_are_skipped_not_mangled() {
        let (out, counts) = tr(
            "CREATE TABLE t(s STRUCT(k VARCHAR, v INT))",
            TextDialect::Duckdb,
            TextDialect::Postgres,
        );
        assert!(out.unwrap().contains("STRUCT"));
        assert_eq!(counts.skipped_for(TranslationRule::TypeName), 1);
    }

    #[test]
    fn function_renames() {
        let (out, _) = tr("SELECT pg_typeof(1)", TextDialect::Postgres, TextDialect::Sqlite);
        assert_eq!(out.unwrap(), "SELECT typeof(1)");
        let (out, _) = tr("SELECT typeof(1)", TextDialect::Sqlite, TextDialect::Postgres);
        assert_eq!(out.unwrap(), "SELECT pg_typeof(1)");
        let (out, _) = tr("SELECT ifnull(NULL, 2)", TextDialect::Sqlite, TextDialect::Postgres);
        assert_eq!(out.unwrap(), "SELECT coalesce(NULL, 2)");
        let (out, counts) = tr("SELECT median(1)", TextDialect::Duckdb, TextDialect::Postgres);
        assert!(out.unwrap().contains("median"));
        assert_eq!(counts.skipped_for(TranslationRule::FunctionName), 1);
    }

    #[test]
    fn if_emulates_as_case_on_pg() {
        let (out, counts) =
            tr("SELECT if(1 > 0, 'y', 'n')", TextDialect::Mysql, TextDialect::Postgres);
        let out = out.unwrap();
        assert!(out.contains("CASE WHEN"), "{out}");
        assert!(parse_statement(&out, TextDialect::Postgres).is_ok());
        assert_eq!(counts.applied_for(TranslationRule::FunctionName), 1);
    }

    #[test]
    fn concat_folds_both_ways() {
        let (out, _) = tr("SELECT a || b FROM t", TextDialect::Postgres, TextDialect::Mysql);
        assert_eq!(out.unwrap(), "SELECT concat(a, b) FROM t");
        let (out, _) = tr("SELECT concat(a, b, c) FROM t", TextDialect::Mysql, TextDialect::Sqlite);
        assert_eq!(out.unwrap(), "SELECT ((a || b) || c) FROM t");
    }

    #[test]
    fn set_becomes_pragma_on_sqlite() {
        let (out, counts) =
            tr("SET default_null_order='nulls_first'", TextDialect::Duckdb, TextDialect::Sqlite);
        let out = out.unwrap();
        assert!(out.starts_with("PRAGMA default_null_order"), "{out}");
        assert!(parse_statement(&out, TextDialect::Sqlite).is_ok());
        assert_eq!(counts.applied_for(TranslationRule::ConfigStatement), 1);
        // PostgreSQL ident-style SET translates too.
        let (out, _) = tr("SET search_path TO public", TextDialect::Postgres, TextDialect::Sqlite);
        assert!(out.unwrap().starts_with("PRAGMA search_path"));
    }

    #[test]
    fn pragma_becomes_set_on_servers() {
        let (out, counts) = tr("PRAGMA threads = 1", TextDialect::Duckdb, TextDialect::Postgres);
        let out = out.unwrap();
        assert!(out.starts_with("SET threads"), "{out}");
        assert!(parse_statement(&out, TextDialect::Postgres).is_ok());
        assert_eq!(counts.applied_for(TranslationRule::ConfigStatement), 1);
        // Value-less PRAGMA reads cannot be carried over.
        let (_, counts) = tr("PRAGMA memory_limit", TextDialect::Duckdb, TextDialect::Mysql);
        assert_eq!(counts.skipped_for(TranslationRule::ConfigStatement), 1);
    }

    #[test]
    fn ilike_emulates_with_lower() {
        let (out, counts) =
            tr("SELECT a FROM t WHERE a ILIKE 'X%'", TextDialect::Postgres, TextDialect::Mysql);
        let out = out.unwrap();
        assert!(out.contains("lower(a) LIKE lower('X%')"), "{out}");
        assert!(parse_statement(&out, TextDialect::Mysql).is_ok());
        assert_eq!(counts.applied_for(TranslationRule::LikeCase), 1);
    }

    #[test]
    fn booleans_become_integers_on_sqlite_and_mysql() {
        let (out, counts) =
            tr("SELECT * FROM t WHERE true", TextDialect::Postgres, TextDialect::Sqlite);
        assert_eq!(out.unwrap(), "SELECT * FROM t WHERE 1");
        assert_eq!(counts.applied_for(TranslationRule::BooleanLiteral), 1);
    }

    #[test]
    fn counters_sum_consistently() {
        let stats = TranslationStats::new();
        for sql in ["SELECT 62 DIV 2", "SELECT if(1, 2, 3)", "SELECT median(1)", "BROKEN("] {
            let _ = translate_sql(sql, TextDialect::Generic, TextDialect::Postgres, &stats);
        }
        let c = stats.counts();
        assert_eq!(c.translated + c.passthrough, 4);
        assert_eq!(
            c.applied_total(),
            TranslationRule::ALL.iter().map(|r| c.applied_for(*r)).sum::<u64>()
        );
        assert_eq!(
            c.skipped_total(),
            TranslationRule::ALL.iter().map(|r| c.skipped_for(*r)).sum::<u64>()
        );
    }
}
