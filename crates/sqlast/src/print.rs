//! AST → SQL printer.
//!
//! The printer is the inverse of the parser in the round-trip sense: for any
//! statement the parser produced, `parse(print(stmt)) == stmt` under the
//! same dialect (a property test over generated corpora holds this). It
//! prints *canonical* SQL — `CAST(x AS T)` instead of `x::T`,
//! `LIMIT n OFFSET m` instead of `LIMIT m, n`, compound expressions fully
//! parenthesised — which already erases the purely *notational* dialect
//! differences (the `::` cast style is the paper's most common RQ4
//! "Statements" failure among translatable ones). Genuinely dialect-specific
//! constructs (`DIV`, struct literals, `PRAGMA`) print in their native
//! spelling; rewriting those is the job of [`crate::translate`].
//!
//! The only dialect-dependent choice the printer itself makes is identifier
//! quoting: backticks for MySQL, double quotes everywhere else, and quoting
//! only when the name needs it (non-word characters or a reserved word).

use crate::ast::*;
use squality_sqltext::TextDialect;

/// Render a statement as SQL that re-parses to the same AST.
pub fn print_statement(stmt: &Stmt, dialect: TextDialect) -> String {
    let mut p = Printer { out: String::new(), dialect };
    p.stmt(stmt);
    p.out
}

struct Printer {
    out: String,
    dialect: TextDialect,
}

impl Printer {
    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    // ---- identifiers ---------------------------------------------------

    /// Print one identifier, quoting it only when required.
    fn ident(&mut self, name: &str) {
        if ident_needs_quoting(name) {
            let (open, close, escaped) = match self.dialect {
                TextDialect::Mysql => ('`', '`', name.replace('`', "``")),
                _ => ('"', '"', name.replace('"', "\"\"")),
            };
            self.out.push(open);
            self.push(&escaped);
            self.out.push(close);
        } else {
            self.push(name);
        }
    }

    /// Print a possibly schema-qualified name (`a.b` stored dot-joined).
    fn qualified(&mut self, name: &str) {
        for (i, part) in name.split('.').enumerate() {
            if i > 0 {
                self.out.push('.');
            }
            self.ident(part);
        }
    }

    /// Function names print bare, never quoted: the parser recognises a
    /// call only as a word directly followed by `(` — `"replace"(x)` does
    /// not parse — and every parser-produced function name is a plain
    /// lowercased word, reserved-looking ones included.
    fn function_name(&mut self, name: &str) {
        self.push(name);
    }

    fn ident_list(&mut self, names: &[String]) {
        for (i, n) in names.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.ident(n);
        }
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Select(q) | Stmt::Values(q) => self.query(q),
            Stmt::Insert(ins) => self.insert(ins),
            Stmt::Update(u) => self.update(u),
            Stmt::Delete(d) => self.delete(d),
            Stmt::CreateTable(ct) => self.create_table(ct),
            Stmt::DropTable { names, if_exists } => {
                self.push("DROP TABLE ");
                if *if_exists {
                    self.push("IF EXISTS ");
                }
                for (i, n) in names.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.qualified(n);
                }
            }
            Stmt::AlterTable { table, action } => {
                self.push("ALTER TABLE ");
                self.qualified(table);
                match action {
                    AlterTableAction::AddColumn(def) => {
                        self.push(" ADD COLUMN ");
                        self.column_def(def);
                    }
                    AlterTableAction::DropColumn { name, if_exists } => {
                        self.push(" DROP COLUMN ");
                        if *if_exists {
                            self.push("IF EXISTS ");
                        }
                        self.ident(name);
                    }
                    AlterTableAction::RenameTo(n) => {
                        self.push(" RENAME TO ");
                        self.qualified(n);
                    }
                    AlterTableAction::RenameColumn { old, new } => {
                        self.push(" RENAME COLUMN ");
                        self.ident(old);
                        self.push(" TO ");
                        self.ident(new);
                    }
                }
            }
            Stmt::CreateIndex { name, table, columns, unique, if_not_exists } => {
                self.push("CREATE ");
                if *unique {
                    self.push("UNIQUE ");
                }
                self.push("INDEX ");
                if *if_not_exists {
                    self.push("IF NOT EXISTS ");
                }
                self.qualified(name);
                self.push(" ON ");
                self.qualified(table);
                self.push("(");
                self.ident_list(columns);
                self.push(")");
            }
            Stmt::DropIndex { name, if_exists } => {
                self.push("DROP INDEX ");
                if *if_exists {
                    self.push("IF EXISTS ");
                }
                self.qualified(name);
            }
            Stmt::CreateView { name, columns, query, or_replace } => {
                self.push("CREATE ");
                if *or_replace {
                    self.push("OR REPLACE ");
                }
                self.push("VIEW ");
                self.qualified(name);
                if !columns.is_empty() {
                    self.push("(");
                    self.ident_list(columns);
                    self.push(")");
                }
                self.push(" AS ");
                self.query(query);
            }
            Stmt::DropView { name, if_exists } => {
                self.push("DROP VIEW ");
                if *if_exists {
                    self.push("IF EXISTS ");
                }
                self.qualified(name);
            }
            Stmt::CreateSchema { name, if_not_exists } => {
                self.push("CREATE SCHEMA ");
                if *if_not_exists {
                    self.push("IF NOT EXISTS ");
                }
                self.qualified(name);
            }
            Stmt::AlterSchema { name, rename_to } => {
                self.push("ALTER SCHEMA ");
                self.qualified(name);
                self.push(" RENAME TO ");
                self.qualified(rename_to);
            }
            Stmt::DropSchema { name, if_exists, cascade } => {
                self.push("DROP SCHEMA ");
                if *if_exists {
                    self.push("IF EXISTS ");
                }
                self.qualified(name);
                if *cascade {
                    self.push(" CASCADE");
                }
            }
            Stmt::CreateFunction { name, language, library } => {
                self.push("CREATE FUNCTION ");
                self.qualified(name);
                self.push("()");
                if let Some(lib) = library {
                    self.push(" AS ");
                    self.string_lit(lib);
                }
                self.push(" LANGUAGE ");
                self.ident(language);
            }
            Stmt::Begin => self.push("BEGIN"),
            Stmt::Commit => self.push("COMMIT"),
            Stmt::Rollback => self.push("ROLLBACK"),
            Stmt::Savepoint { name } => {
                self.push("SAVEPOINT ");
                self.ident(name);
            }
            Stmt::Release { name } => {
                self.push("RELEASE SAVEPOINT ");
                self.ident(name);
            }
            Stmt::Set { name, value } => {
                self.push("SET ");
                // MySQL user variables (@x) are lexed whole; print raw.
                if name.starts_with('@') {
                    self.push(name);
                } else {
                    self.qualified(name);
                }
                match value {
                    SetValue::Default => self.push(" TO DEFAULT"),
                    SetValue::Ident(v) => {
                        self.push(" = ");
                        self.push(v);
                    }
                    SetValue::Expr(e) => {
                        self.push(" = ");
                        self.expr(e);
                    }
                }
            }
            Stmt::Pragma { name, value } => {
                self.push("PRAGMA ");
                self.qualified(name);
                if let Some(v) = value {
                    self.push(" = ");
                    self.pragma_value(v);
                }
            }
            Stmt::Explain { analyze, inner } => {
                self.push("EXPLAIN ");
                if *analyze {
                    self.push("ANALYZE ");
                }
                self.stmt(inner);
            }
            Stmt::Copy { table, path, from } => {
                self.push("COPY ");
                self.qualified(table);
                self.push(if *from { " FROM " } else { " TO " });
                if path == "STDIN" || path == "STDOUT" {
                    self.push(path);
                } else {
                    self.string_lit(path);
                }
            }
            Stmt::Show { name } => {
                self.push("SHOW ");
                if name == "ALL" {
                    self.push("ALL");
                } else {
                    self.qualified(name);
                }
            }
            Stmt::Use { database } => {
                self.push("USE ");
                self.qualified(database);
            }
            Stmt::Truncate { table } => {
                self.push("TRUNCATE TABLE ");
                self.qualified(table);
            }
            Stmt::LoadExtension { name } => {
                self.push("LOAD ");
                self.ident(name);
            }
            Stmt::Vacuum => self.push("VACUUM"),
            Stmt::Analyze { table } => {
                self.push("ANALYZE");
                if let Some(t) = table {
                    self.push(" ");
                    self.qualified(t);
                }
            }
        }
    }

    fn insert(&mut self, ins: &InsertStmt) {
        self.push("INSERT ");
        if ins.or_replace {
            self.push("OR REPLACE ");
        }
        self.push("INTO ");
        self.qualified(&ins.table);
        if !ins.columns.is_empty() {
            self.push("(");
            self.ident_list(&ins.columns);
            self.push(")");
        }
        match &ins.source {
            InsertSource::DefaultValues => self.push(" DEFAULT VALUES"),
            InsertSource::Values(rows) => {
                self.push(" VALUES ");
                self.value_rows(rows);
            }
            InsertSource::Query(q) => {
                self.push(" ");
                self.query(q);
            }
        }
    }

    fn value_rows(&mut self, rows: &[Vec<Expr>]) {
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.push("(");
            self.expr_list(row);
            self.push(")");
        }
    }

    fn update(&mut self, u: &UpdateStmt) {
        self.push("UPDATE ");
        self.qualified(&u.table);
        self.push(" SET ");
        for (i, (col, e)) in u.assignments.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.ident(col);
            self.push(" = ");
            self.expr(e);
        }
        if let Some(w) = &u.where_clause {
            self.push(" WHERE ");
            self.expr(w);
        }
    }

    fn delete(&mut self, d: &DeleteStmt) {
        self.push("DELETE FROM ");
        self.qualified(&d.table);
        if let Some(w) = &d.where_clause {
            self.push(" WHERE ");
            self.expr(w);
        }
    }

    fn create_table(&mut self, ct: &CreateTableStmt) {
        self.push("CREATE ");
        if ct.temporary {
            self.push("TEMPORARY ");
        }
        self.push("TABLE ");
        if ct.if_not_exists {
            self.push("IF NOT EXISTS ");
        }
        self.qualified(&ct.name);
        if let Some(q) = &ct.as_query {
            self.push(" AS ");
            self.query(q);
            return;
        }
        self.push("(");
        for (i, def) in ct.columns.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.column_def(def);
        }
        self.push(")");
    }

    fn column_def(&mut self, def: &ColumnDef) {
        self.ident(&def.name);
        self.push(" ");
        self.push(&def.type_name.to_string());
        if def.not_null {
            self.push(" NOT NULL");
        }
        if def.primary_key {
            self.push(" PRIMARY KEY");
        }
        if def.unique {
            self.push(" UNIQUE");
        }
        if let Some(e) = &def.default {
            self.push(" DEFAULT ");
            // The parser reads defaults at prefix precedence; parenthesise
            // anything that is not a plain prefix form.
            match e {
                Expr::Literal(_) | Expr::Column { .. } | Expr::Function { .. } => self.expr(e),
                _ => {
                    self.push("(");
                    self.expr(e);
                    self.push(")");
                }
            }
        }
    }

    // ---- queries -------------------------------------------------------

    fn query(&mut self, q: &SelectStmt) {
        if let Some(w) = &q.with {
            self.push("WITH ");
            if w.recursive {
                self.push("RECURSIVE ");
            }
            for (i, cte) in w.ctes.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.ident(&cte.name);
                if !cte.columns.is_empty() {
                    self.push("(");
                    self.ident_list(&cte.columns);
                    self.push(")");
                }
                self.push(" AS (");
                self.query(&cte.query);
                self.push(")");
            }
            self.push(" ");
        }
        self.set_expr(&q.body);
        if !q.order_by.is_empty() {
            self.push(" ORDER BY ");
            for (i, item) in q.order_by.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.expr(&item.expr);
                if item.desc {
                    self.push(" DESC");
                }
                match item.nulls_first {
                    Some(true) => self.push(" NULLS FIRST"),
                    Some(false) => self.push(" NULLS LAST"),
                    None => {}
                }
            }
        }
        if let Some(l) = &q.limit {
            self.push(" LIMIT ");
            self.expr(l);
        }
        if let Some(o) = &q.offset {
            self.push(" OFFSET ");
            self.expr(o);
        }
    }

    fn set_expr(&mut self, body: &SetExpr) {
        match body {
            SetExpr::Select(core) => self.select_core(core),
            SetExpr::Values(rows) => {
                self.push("VALUES ");
                self.value_rows(rows);
            }
            SetExpr::Query(q) => {
                self.push("(");
                self.query(q);
                self.push(")");
            }
            SetExpr::SetOp { op, all, left, right } => {
                self.set_expr(left);
                self.push(match op {
                    SetOp::Union => " UNION ",
                    SetOp::Intersect => " INTERSECT ",
                    SetOp::Except => " EXCEPT ",
                });
                if *all {
                    self.push("ALL ");
                }
                self.set_expr(right);
            }
        }
    }

    fn select_core(&mut self, core: &SelectCore) {
        self.push("SELECT ");
        if core.distinct {
            self.push("DISTINCT ");
        }
        for (i, item) in core.projection.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            match item {
                SelectItem::Wildcard => self.push("*"),
                SelectItem::QualifiedWildcard(t) => {
                    self.ident(t);
                    self.push(".*");
                }
                SelectItem::Expr { expr, alias } => {
                    self.expr(expr);
                    if let Some(a) = alias {
                        self.push(" AS ");
                        self.ident(a);
                    }
                }
            }
        }
        if !core.from.is_empty() {
            self.push(" FROM ");
            for (i, t) in core.from.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.table_ref(t);
            }
        }
        if let Some(w) = &core.where_clause {
            self.push(" WHERE ");
            self.expr(w);
        }
        if !core.group_by.is_empty() {
            self.push(" GROUP BY ");
            self.expr_list(&core.group_by);
        }
        if let Some(h) = &core.having {
            self.push(" HAVING ");
            self.expr(h);
        }
    }

    fn table_ref(&mut self, t: &TableRef) {
        match t {
            TableRef::Named { name, alias } => {
                self.qualified(name);
                if let Some(a) = alias {
                    self.push(" AS ");
                    self.ident(a);
                }
            }
            TableRef::Subquery { query, alias } => {
                self.push("(");
                self.query(query);
                self.push(")");
                if let Some(a) = alias {
                    self.push(" AS ");
                    self.ident(a);
                }
            }
            TableRef::Function { name, args, alias } => {
                self.function_name(name);
                self.push("(");
                self.expr_list(args);
                self.push(")");
                if let Some(a) = alias {
                    self.push(" AS ");
                    self.ident(a);
                }
            }
            TableRef::Join { left, right, kind, on, using } => {
                self.table_ref(left);
                self.push(match kind {
                    JoinKind::Inner => " INNER JOIN ",
                    JoinKind::Left => " LEFT JOIN ",
                    JoinKind::Right => " RIGHT JOIN ",
                    JoinKind::Full => " FULL JOIN ",
                    JoinKind::Cross => " CROSS JOIN ",
                    JoinKind::AsOf => " ASOF JOIN ",
                });
                self.table_ref(right);
                if let Some(e) = on {
                    self.push(" ON ");
                    self.expr(e);
                }
                if !using.is_empty() {
                    self.push(" USING (");
                    self.ident_list(using);
                    self.push(")");
                }
            }
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr_list(&mut self, exprs: &[Expr]) {
        for (i, e) in exprs.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.expr(e);
        }
    }

    /// Print an expression. Compound forms are fully parenthesised, which
    /// makes the output precedence-independent: the parser unwraps the
    /// parentheses back to the same tree.
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Literal(l) => self.literal(l),
            Expr::Column { table, name } => {
                if let Some(t) = table {
                    self.ident(t);
                    self.push(".");
                }
                self.ident(name);
            }
            Expr::Parameter(p) => self.push(p),
            Expr::Interval(text) => {
                self.push("INTERVAL ");
                self.string_lit(text);
            }
            Expr::Unary { op, expr } => {
                self.push("(");
                self.push(match op {
                    UnaryOp::Neg => "-",
                    UnaryOp::Pos => "+",
                    UnaryOp::Not => "NOT ",
                    UnaryOp::BitNot => "~",
                });
                self.expr(expr);
                self.push(")");
            }
            Expr::Binary { left, op, right } => {
                self.push("(");
                self.expr(left);
                self.push(" ");
                self.push(op.sql());
                self.push(" ");
                self.expr(right);
                self.push(")");
            }
            Expr::Function { name, args, distinct, star } => {
                self.function_name(name);
                self.push("(");
                if *star {
                    self.push("*");
                } else {
                    if *distinct {
                        self.push("DISTINCT ");
                    }
                    self.expr_list(args);
                }
                self.push(")");
            }
            Expr::Cast { expr, ty } => {
                self.push("CAST(");
                self.expr(expr);
                self.push(" AS ");
                self.push(&ty.to_string());
                self.push(")");
            }
            Expr::Case { operand, branches, else_branch } => {
                self.push("CASE");
                if let Some(op) = operand {
                    self.push(" ");
                    self.expr(op);
                }
                for (cond, val) in branches {
                    self.push(" WHEN ");
                    self.expr(cond);
                    self.push(" THEN ");
                    self.expr(val);
                }
                if let Some(e) = else_branch {
                    self.push(" ELSE ");
                    self.expr(e);
                }
                self.push(" END");
            }
            Expr::IsNull { expr, negated } => {
                self.push("(");
                self.expr(expr);
                self.push(if *negated { " IS NOT NULL" } else { " IS NULL" });
                self.push(")");
            }
            Expr::IsDistinctFrom { left, right, negated } => {
                // Mirrors the parser: `negated == true` is the plain
                // `IS DISTINCT FROM` form.
                self.push("(");
                self.expr(left);
                self.push(if *negated { " IS DISTINCT FROM " } else { " IS NOT DISTINCT FROM " });
                self.expr(right);
                self.push(")");
            }
            Expr::InList { expr, list, negated } => {
                self.push("(");
                self.expr(expr);
                self.push(if *negated { " NOT IN (" } else { " IN (" });
                self.expr_list(list);
                self.push("))");
            }
            Expr::InSubquery { expr, query, negated } => {
                self.push("(");
                self.expr(expr);
                self.push(if *negated { " NOT IN (" } else { " IN (" });
                self.query(query);
                self.push("))");
            }
            Expr::Between { expr, low, high, negated } => {
                self.push("(");
                self.expr(expr);
                self.push(if *negated { " NOT BETWEEN " } else { " BETWEEN " });
                self.expr(low);
                self.push(" AND ");
                self.expr(high);
                self.push(")");
            }
            Expr::Like { expr, pattern, negated, case_insensitive } => {
                self.push("(");
                self.expr(expr);
                match (negated, case_insensitive) {
                    (false, false) => self.push(" LIKE "),
                    (true, false) => self.push(" NOT LIKE "),
                    (false, true) => self.push(" ILIKE "),
                    (true, true) => self.push(" NOT ILIKE "),
                }
                self.expr(pattern);
                self.push(")");
            }
            Expr::Exists { query, negated } => {
                self.push("(");
                if *negated {
                    self.push("NOT ");
                }
                self.push("EXISTS (");
                self.query(query);
                self.push("))");
            }
            Expr::Subquery(q) => {
                self.push("(");
                self.query(q);
                self.push(")");
            }
            Expr::Row(items) => {
                self.push("(");
                self.expr_list(items);
                self.push(")");
            }
            Expr::Array(items) => {
                self.push("ARRAY[");
                self.expr_list(items);
                self.push("]");
            }
            Expr::Struct(fields) => {
                self.push("{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.string_lit(k);
                    self.push(": ");
                    self.expr(v);
                }
                self.push("}");
            }
        }
    }

    fn literal(&mut self, l: &Literal) {
        match l {
            Literal::Null => self.push("NULL"),
            Literal::Boolean(true) => self.push("TRUE"),
            Literal::Boolean(false) => self.push("FALSE"),
            Literal::Integer(v) => self.push(&v.to_string()),
            Literal::Float(v) => self.push(&fmt_float(*v)),
            Literal::String(s) => self.string_lit(s),
            Literal::Blob(bytes) => {
                self.push("X'");
                for b in bytes {
                    self.push(&format!("{b:02X}"));
                }
                self.push("'");
            }
        }
    }

    fn string_lit(&mut self, s: &str) {
        self.out.push('\'');
        self.push(&s.replace('\'', "''"));
        self.out.push('\'');
    }

    /// PRAGMA values are stored as raw text; bare words and numbers print
    /// unquoted, anything else as a string literal.
    fn pragma_value(&mut self, v: &str) {
        let bare_word = is_plain_word(v);
        let bare_number = !v.is_empty() && v.chars().all(|c| c.is_ascii_digit() || c == '-');
        if bare_word || bare_number {
            self.push(v);
        } else {
            self.string_lit(v);
        }
    }
}

/// Render a float so it re-parses to the identical value *and* stays a
/// float: integral values get a `.0` suffix (plain `2` would re-parse as an
/// integer literal). Non-finite values have no SQL literal form; they print
/// as an overflowing literal, which the numeric lexer reads back as an
/// (infinite) float.
fn fmt_float(v: f64) -> String {
    if !v.is_finite() {
        return if v.is_sign_negative() && !v.is_nan() { "-9e999".into() } else { "9e999".into() };
    }
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

fn is_plain_word(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Does this identifier need quoting to survive a round trip?
fn ident_needs_quoting(name: &str) -> bool {
    !is_plain_word(name) || crate::parser::is_reserved_word(&name.to_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn roundtrip(sql: &str, dialect: TextDialect) {
        let ast = parse_statement(sql, dialect).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let printed = print_statement(&ast, dialect);
        let reparsed = parse_statement(&printed, dialect)
            .unwrap_or_else(|e| panic!("printed {printed:?} from {sql:?}: {e}"));
        assert_eq!(ast, reparsed, "round trip changed the AST\n  in: {sql}\n  out: {printed}");
    }

    #[test]
    fn roundtrip_selects() {
        for sql in [
            "SELECT a, b FROM t1 WHERE c > a",
            "SELECT 1 + 2 * 3",
            "SELECT DISTINCT a AS x FROM t ORDER BY a DESC NULLS LAST LIMIT 3 OFFSET 1",
            "SELECT count(*) FROM t AS x INNER JOIN u AS y ON x.a = y.b",
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT b FROM u)",
            "SELECT CASE WHEN a > 5 THEN 'hi' ELSE 'lo' END FROM t",
            "SELECT a FROM t WHERE a BETWEEN 1 AND 9 OR a IS NOT NULL",
            "SELECT sum(a), min(a), max(a) FROM t GROUP BY b HAVING count(*) > 1",
            "WITH RECURSIVE cnt(x) AS (SELECT 1 UNION ALL SELECT x+1 FROM cnt WHERE x < 5) SELECT count(*) FROM cnt",
            "SELECT 1 UNION SELECT 2 UNION ALL SELECT 3 INTERSECT SELECT 3",
            "VALUES (1, 'a'), (2, 'b')",
            "SELECT count(*) FROM generate_series(1, 5)",
            "SELECT t.* FROM t",
            "SELECT EXISTS (SELECT 1 FROM t), NOT EXISTS (SELECT 2 FROM t)",
            "SELECT (1, 2) = (3, 4)",
            "SELECT x'AB12'",
            "SELECT -1.5e10, 2.0, .5",
            "SELECT CAST(a AS INTEGER) FROM t",
            // Function names that double as reserved words must stay bare:
            // quoting them (`"replace"(...)`) would not re-parse as a call.
            "SELECT replace('a', 'b', 'c')",
            "SELECT \"values\" FROM t WHERE replace(x, 'a', 'b') = 'c'",
        ] {
            roundtrip(sql, TextDialect::Generic);
        }
    }

    #[test]
    fn roundtrip_ddl_and_dml() {
        for sql in [
            "CREATE TABLE t(a INTEGER NOT NULL, b VARCHAR(10) UNIQUE, c TEXT DEFAULT 'x')",
            "CREATE TEMPORARY TABLE IF NOT EXISTS t(a INTEGER PRIMARY KEY)",
            "CREATE TABLE t AS SELECT 1 AS a",
            "INSERT INTO t(a, b) VALUES (1, 'x'), (2, 'y')",
            "INSERT OR REPLACE INTO t VALUES (1)",
            "INSERT INTO t SELECT * FROM u",
            "INSERT INTO t DEFAULT VALUES",
            "UPDATE t SET a = a + 1, b = 'z' WHERE a < 10",
            "DELETE FROM t WHERE a > 100",
            "DROP TABLE IF EXISTS a, b",
            "ALTER TABLE t ADD COLUMN x INTEGER",
            "ALTER TABLE t RENAME COLUMN a TO b",
            "CREATE UNIQUE INDEX idx ON t(a, b)",
            "DROP INDEX IF EXISTS idx",
            "CREATE VIEW v(a) AS SELECT a FROM t",
            "CREATE SCHEMA IF NOT EXISTS s",
            "ALTER SCHEMA s RENAME TO s2",
            "DROP SCHEMA IF EXISTS s CASCADE",
            "BEGIN",
            "COMMIT",
            "ROLLBACK",
            "SAVEPOINT sp",
            "RELEASE SAVEPOINT sp",
            "TRUNCATE TABLE t",
            "VACUUM",
            "ANALYZE t",
            "EXPLAIN SELECT * FROM t",
        ] {
            roundtrip(sql, TextDialect::Generic);
        }
    }

    #[test]
    fn roundtrip_dialect_constructs() {
        roundtrip("SELECT 62 DIV 2", TextDialect::Mysql);
        roundtrip("SET @usr_var = 62", TextDialect::Mysql);
        roundtrip("SELECT 1::text", TextDialect::Postgres);
        roundtrip("SET search_path TO public", TextDialect::Postgres);
        roundtrip("SET x TO DEFAULT", TextDialect::Postgres);
        roundtrip("SHOW lc_messages", TextDialect::Postgres);
        roundtrip("COPY t FROM '/data/t.data'", TextDialect::Postgres);
        roundtrip("SELECT a FROM t WHERE a ~ 'x' OR b ILIKE 'Y%'", TextDialect::Postgres);
        roundtrip(
            "CREATE FUNCTION f(internal) RETURNS void AS 'lib', 'f' LANGUAGE C",
            TextDialect::Postgres,
        );
        roundtrip("PRAGMA table_info(t1)", TextDialect::Sqlite);
        roundtrip("PRAGMA cache_size = 2000", TextDialect::Sqlite);
        roundtrip("SELECT [1, 2, 3]", TextDialect::Duckdb);
        roundtrip("SELECT {'k': 'v', 'n': 1}", TextDialect::Duckdb);
        roundtrip("SELECT ARRAY[1, 2]", TextDialect::Duckdb);
        roundtrip(
            "CREATE TABLE t(a HUGEINT, s STRUCT(k VARCHAR, v INT), u INT[])",
            TextDialect::Duckdb,
        );
        roundtrip("PRAGMA memory_limit = unlimited", TextDialect::Duckdb);
        roundtrip("LOAD sqlsmith", TextDialect::Duckdb);
        roundtrip("SELECT a IS DISTINCT FROM b FROM t", TextDialect::Duckdb);
        roundtrip("SELECT interval '1' DAY", TextDialect::Postgres);
    }

    #[test]
    fn reserved_identifiers_are_quoted() {
        let ast =
            parse_statement("SELECT \"select\" FROM \"table\"", TextDialect::Postgres).unwrap();
        let printed = print_statement(&ast, TextDialect::Postgres);
        assert_eq!(printed, "SELECT \"select\" FROM \"table\"");
        let my = print_statement(&ast, TextDialect::Mysql);
        assert_eq!(my, "SELECT `select` FROM `table`");
    }

    #[test]
    fn float_formatting_roundtrips() {
        assert_eq!(fmt_float(2.0), "2.0");
        assert_eq!(fmt_float(0.5), "0.5");
        assert!(fmt_float(f64::INFINITY).parse::<f64>().unwrap().is_infinite());
    }
}
