//! AST node definitions.
//!
//! The shape follows the classic query/statement split: [`Stmt`] is the
//! top level, [`SelectStmt`] carries WITH / set-operations / ORDER BY /
//! LIMIT around a [`SetExpr`] body, and [`Expr`] is a conventional typed
//! expression tree. Nodes carry no dialect information — dialect decisions
//! happen at parse time (what is accepted) and at execution time (what it
//! means).

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(SelectStmt),
    Insert(InsertStmt),
    Update(UpdateStmt),
    Delete(DeleteStmt),
    CreateTable(CreateTableStmt),
    DropTable {
        names: Vec<String>,
        if_exists: bool,
    },
    AlterTable {
        table: String,
        action: AlterTableAction,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
        if_not_exists: bool,
    },
    DropIndex {
        name: String,
        if_exists: bool,
    },
    CreateView {
        name: String,
        columns: Vec<String>,
        query: SelectStmt,
        or_replace: bool,
    },
    DropView {
        name: String,
        if_exists: bool,
    },
    CreateSchema {
        name: String,
        if_not_exists: bool,
    },
    AlterSchema {
        name: String,
        rename_to: String,
    },
    DropSchema {
        name: String,
        if_exists: bool,
        cascade: bool,
    },
    /// `CREATE FUNCTION name(args) RETURNS ty AS 'library', 'symbol' LANGUAGE C`
    /// — the PostgreSQL regression suite's extension-loading statement
    /// (paper Listing 7). The body is kept opaque.
    CreateFunction {
        name: String,
        language: String,
        library: Option<String>,
    },
    Begin,
    Commit,
    Rollback,
    Savepoint {
        name: String,
    },
    Release {
        name: String,
    },
    /// `SET [SESSION|GLOBAL|LOCAL] name = value` / `SET name TO value`.
    Set {
        name: String,
        value: SetValue,
    },
    /// `PRAGMA name` / `PRAGMA name = value` / `PRAGMA name(value)`.
    Pragma {
        name: String,
        value: Option<String>,
    },
    Explain {
        analyze: bool,
        inner: Box<Stmt>,
    },
    /// `COPY table FROM/TO 'path'` (PostgreSQL regression suite).
    Copy {
        table: String,
        path: String,
        from: bool,
    },
    Show {
        name: String,
    },
    Use {
        database: String,
    },
    /// Standalone `VALUES (...), (...)` treated as a query.
    Values(SelectStmt),
    Truncate {
        table: String,
    },
    /// DuckDB `INSTALL ext` / `LOAD ext`; SQLite `.load` equivalent.
    LoadExtension {
        name: String,
    },
    Vacuum,
    Analyze {
        table: Option<String>,
    },
}

/// `INSERT INTO t (cols) VALUES ... | SELECT ...`
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    pub columns: Vec<String>,
    pub source: InsertSource,
    /// `INSERT OR REPLACE` / `REPLACE INTO` flavour.
    pub or_replace: bool,
}

/// Where inserted rows come from.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<SelectStmt>),
    DefaultValues,
}

/// `UPDATE t SET a = e, ... [WHERE p]`
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM t [WHERE p]`
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// `CREATE TABLE t (cols...) | AS SELECT ...`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStmt {
    pub name: String,
    pub if_not_exists: bool,
    pub temporary: bool,
    pub columns: Vec<ColumnDef>,
    pub as_query: Option<Box<SelectStmt>>,
}

/// One column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub type_name: TypeName,
    pub not_null: bool,
    pub primary_key: bool,
    pub unique: bool,
    pub default: Option<Expr>,
}

/// ALTER TABLE actions (the subset the studied suites use).
#[derive(Debug, Clone, PartialEq)]
pub enum AlterTableAction {
    AddColumn(ColumnDef),
    DropColumn { name: String, if_exists: bool },
    RenameTo(String),
    RenameColumn { old: String, new: String },
}

/// Value of a SET statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SetValue {
    /// Bare identifier / keyword value (`SET x TO on`).
    Ident(String),
    /// Expression value (`SET x = 1`).
    Expr(Expr),
    /// `SET x TO DEFAULT`.
    Default,
}

/// A full query: optional WITH, a body of set operations, ORDER BY, LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub with: Option<WithClause>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

/// WITH clause: CTE list, possibly RECURSIVE.
#[derive(Debug, Clone, PartialEq)]
pub struct WithClause {
    pub recursive: bool,
    pub ctes: Vec<Cte>,
}

/// One common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub columns: Vec<String>,
    pub query: SelectStmt,
}

/// Query body: a simple SELECT core, a VALUES list, or a set operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<SelectCore>),
    Values(Vec<Vec<Expr>>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
    /// Parenthesised sub-query with its own ORDER BY / LIMIT.
    Query(Box<SelectStmt>),
}

/// UNION / INTERSECT / EXCEPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// The SELECT ... FROM ... WHERE ... core.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Plain table or view name.
    Named { name: String, alias: Option<String> },
    /// Derived table `(SELECT ...) alias`.
    Subquery { query: Box<SelectStmt>, alias: Option<String> },
    /// Table-valued function such as `generate_series(...)` or `range(...)`.
    Function { name: String, args: Vec<Expr>, alias: Option<String> },
    /// Explicit join.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
        using: Vec<String>,
    },
}

impl TableRef {
    /// The alias or base name this reference binds in scope, if any.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } | TableRef::Function { alias, .. } => alias.as_deref(),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join flavours; `AsOf` is DuckDB-specific (paper §6, unsupported-statement
/// failures on other hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
    AsOf,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
    /// NULLS FIRST (`Some(true)`), NULLS LAST (`Some(false)`), or default.
    pub nulls_first: Option<bool>,
}

/// Scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Literal),
    /// Column reference, optionally table-qualified.
    Column {
        table: Option<String>,
        name: String,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Function call; `distinct` covers `COUNT(DISTINCT x)`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
    Cast {
        expr: Box<Expr>,
        ty: TypeName,
    },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `IS [NOT] DISTINCT FROM`
    IsDistinctFrom {
        left: Box<Expr>,
        right: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
        case_insensitive: bool,
    },
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// Scalar subquery.
    Subquery(Box<SelectStmt>),
    /// Row value `(a, b)` with 2+ elements.
    Row(Vec<Expr>),
    /// `ARRAY[...]` (PostgreSQL/DuckDB) or `[...]` (DuckDB).
    Array(Vec<Expr>),
    /// DuckDB struct literal `{'k': v, ...}`.
    Struct(Vec<(String, Expr)>),
    /// `interval '1-2'` — kept as an opaque typed literal.
    Interval(String),
    /// Bind parameter (`?`, `$1`, `:x`, `@v`).
    Parameter(String),
}

impl Expr {
    /// Convenience integer literal.
    pub fn integer(v: i64) -> Expr {
        Expr::Literal(Literal::Integer(v))
    }

    /// Convenience string literal.
    pub fn string(s: &str) -> Expr {
        Expr::Literal(Literal::String(s.to_string()))
    }

    /// Convenience column reference.
    pub fn column(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }
}

/// Literal values as written in SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Integer(i64),
    Float(f64),
    String(String),
    Blob(Vec<u8>),
    Boolean(bool),
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Pos,
    Not,
    BitNot,
}

/// Binary operators. `Div` carries dialect-dependent semantics (the paper's
/// headline semantic divergence: integer vs decimal division); `IntDiv` is
/// MySQL's `DIV`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    IntDiv,
    Mod,
    Concat,
    Eq,
    NotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    ShiftLeft,
    ShiftRight,
    /// PostgreSQL/DuckDB regex match `~`.
    RegexMatch,
}

impl BinaryOp {
    /// SQL spelling, used in error messages and EXPLAIN output.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::IntDiv => "DIV",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Gt => ">",
            BinaryOp::LtEq => "<=",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "#",
            BinaryOp::ShiftLeft => "<<",
            BinaryOp::ShiftRight => ">>",
            BinaryOp::RegexMatch => "~",
        }
    }
}

/// A type name with optional arguments and nesting (DuckDB LIST / STRUCT /
/// UNION types; paper Listing 11 uses `UNION(str VARCHAR, obj STRUCT(...))`).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeName {
    /// `INTEGER`, `VARCHAR(10)`, `DECIMAL(10, 2)`, ...
    Simple { name: String, params: Vec<i64> },
    /// `ty[]` or `LIST(ty)`.
    List(Box<TypeName>),
    /// `STRUCT(name ty, ...)`.
    Struct(Vec<(String, TypeName)>),
    /// `UNION(name ty, ...)` — DuckDB only.
    Union(Vec<(String, TypeName)>),
}

impl TypeName {
    /// Convenience constructor for an unparameterised type.
    pub fn simple(name: &str) -> TypeName {
        TypeName::Simple { name: name.to_uppercase(), params: Vec::new() }
    }

    /// The outermost type word (`VARCHAR` for `VARCHAR(10)`, `STRUCT` ...).
    pub fn head(&self) -> &str {
        match self {
            TypeName::Simple { name, .. } => name,
            TypeName::List(_) => "LIST",
            TypeName::Struct(_) => "STRUCT",
            TypeName::Union(_) => "UNION",
        }
    }
}

impl std::fmt::Display for TypeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeName::Simple { name, params } => {
                write!(f, "{name}")?;
                if !params.is_empty() {
                    let ps: Vec<String> = params.iter().map(|p| p.to_string()).collect();
                    write!(f, "({})", ps.join(", "))?;
                }
                Ok(())
            }
            TypeName::List(inner) => write!(f, "{inner}[]"),
            TypeName::Struct(fields) => {
                let fs: Vec<String> = fields.iter().map(|(n, t)| format!("{n} {t}")).collect();
                write!(f, "STRUCT({})", fs.join(", "))
            }
            TypeName::Union(fields) => {
                let fs: Vec<String> = fields.iter().map(|(n, t)| format!("{n} {t}")).collect();
                write!(f, "UNION({})", fs.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(TypeName::simple("integer").to_string(), "INTEGER");
        assert_eq!(
            TypeName::Simple { name: "VARCHAR".into(), params: vec![10] }.to_string(),
            "VARCHAR(10)"
        );
        assert_eq!(TypeName::List(Box::new(TypeName::simple("INT"))).to_string(), "INT[]");
        let s = TypeName::Struct(vec![
            ("k".into(), TypeName::simple("VARCHAR")),
            ("v".into(), TypeName::simple("INT")),
        ]);
        assert_eq!(s.to_string(), "STRUCT(k VARCHAR, v INT)");
    }

    #[test]
    fn binding_names() {
        let t = TableRef::Named { name: "t".into(), alias: Some("x".into()) };
        assert_eq!(t.binding_name(), Some("x"));
        let t = TableRef::Named { name: "t".into(), alias: None };
        assert_eq!(t.binding_name(), Some("t"));
    }

    #[test]
    fn op_spellings() {
        assert_eq!(BinaryOp::Div.sql(), "/");
        assert_eq!(BinaryOp::IntDiv.sql(), "DIV");
        assert_eq!(BinaryOp::Concat.sql(), "||");
    }
}
