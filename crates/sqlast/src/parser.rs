//! Dialect-aware recursive-descent / Pratt parser.
//!
//! Dialect gating happens here so that the *same* statement text can parse
//! on one engine and raise a syntax error on another, exactly as the paper
//! observes (RQ4 "Statements" failures). Examples: `DIV` only parses for
//! MySQL, `PRAGMA` only for SQLite/DuckDB, `SET` is a syntax error on
//! SQLite, struct literals only parse for DuckDB.

use crate::ast::*;
use crate::error::ParseError;
use squality_sqltext::{tokenize, TextDialect, Token, TokenKind};

/// Parse a single statement; trailing semicolon is allowed.
pub fn parse_statement(sql: &str, dialect: TextDialect) -> Result<Stmt, ParseError> {
    let mut p = Parser::new(sql, dialect);
    let stmt = p.statement()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str, dialect: TextDialect) -> Result<Vec<Stmt>, ParseError> {
    let mut p = Parser::new(sql, dialect);
    let mut stmts = Vec::new();
    loop {
        p.skip_semicolons();
        if p.at_eof() {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// The parser state over a pre-lexed token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    dialect: TextDialect,
}

impl Parser {
    /// Create a parser for `sql` under `dialect` lexical + grammar rules.
    pub fn new(sql: &str, dialect: TextDialect) -> Self {
        Parser { tokens: tokenize(sql, dialect), pos: 0, dialect }
    }

    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn offset(&self) -> usize {
        self.peek()
            .map(|t| t.start)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.end).unwrap_or(0))
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(msg, self.offset()))
    }

    fn err_near<T>(&self) -> Result<T, ParseError> {
        match self.peek() {
            Some(t) => {
                Err(ParseError::new(format!("syntax error at or near \"{}\"", t.text), t.start))
            }
            None => Err(ParseError::new("syntax error at end of input", self.offset())),
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a symbol (operator/punct) if present.
    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek().map(|t| t.is_symbol(sym)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err_near()
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err_near()
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false)
    }

    fn peek_sym(&self, sym: &str) -> bool {
        self.peek().map(|t| t.is_symbol(sym)).unwrap_or(false)
    }

    fn skip_semicolons(&mut self) {
        while self.eat_sym(";") {}
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err_near()
        }
    }

    /// Parse an identifier (bare word or quoted), returning its unquoted text.
    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Word => {
                let s = t.text.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) if t.kind == TokenKind::QuotedIdent => {
                let s = unquote_ident(&t.text);
                self.pos += 1;
                Ok(s)
            }
            _ => self.err_near(),
        }
    }

    /// Parse a possibly schema-qualified name, joined with '.'.
    fn qualified_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.identifier()?;
        while self.peek_sym(".") {
            // Stop before `.*` (wildcard handled by the caller).
            if self.peek_at(1).map(|t| t.is_symbol("*")).unwrap_or(false) {
                break;
            }
            self.pos += 1;
            name.push('.');
            name.push_str(&self.identifier()?);
        }
        Ok(name)
    }

    // ---- statements ----------------------------------------------------

    /// Parse one statement.
    pub fn statement(&mut self) -> Result<Stmt, ParseError> {
        let Some(first) = self.peek() else {
            return self.err("empty statement");
        };
        if first.kind != TokenKind::Word {
            if first.is_symbol("(") {
                return Ok(Stmt::Select(self.query()?));
            }
            return self.err_near();
        }
        let word = first.upper();
        match word.as_str() {
            "SELECT" | "VALUES" | "WITH" => Ok(Stmt::Select(self.query()?)),
            "INSERT" | "REPLACE" => self.insert(),
            "UPDATE" => self.update(),
            "DELETE" => self.delete(),
            "CREATE" => self.create(),
            "DROP" => self.drop(),
            "ALTER" => self.alter(),
            "BEGIN" => {
                self.pos += 1;
                self.eat_kw("TRANSACTION");
                self.eat_kw("WORK");
                Ok(Stmt::Begin)
            }
            "START" => {
                self.pos += 1;
                if self.dialect == TextDialect::Sqlite {
                    // SQLite lacks START TRANSACTION (paper §4).
                    return self.err("syntax error at or near \"START\"");
                }
                self.expect_kw("TRANSACTION")?;
                Ok(Stmt::Begin)
            }
            "COMMIT" | "END" => {
                self.pos += 1;
                self.eat_kw("TRANSACTION");
                self.eat_kw("WORK");
                Ok(Stmt::Commit)
            }
            "ROLLBACK" | "ABORT" => {
                self.pos += 1;
                self.eat_kw("TRANSACTION");
                self.eat_kw("WORK");
                Ok(Stmt::Rollback)
            }
            "SAVEPOINT" => {
                self.pos += 1;
                Ok(Stmt::Savepoint { name: self.identifier()? })
            }
            "RELEASE" => {
                self.pos += 1;
                self.eat_kw("SAVEPOINT");
                Ok(Stmt::Release { name: self.identifier()? })
            }
            "SET" => self.set(),
            "PRAGMA" => self.pragma(),
            "EXPLAIN" => self.explain(),
            "COPY" => self.copy(),
            "SHOW" => self.show(),
            "USE" => self.use_stmt(),
            "TRUNCATE" => {
                self.pos += 1;
                self.eat_kw("TABLE");
                Ok(Stmt::Truncate { table: self.qualified_name()? })
            }
            "VACUUM" => {
                self.pos += 1;
                let _ = self.qualified_name(); // optional target, ignored
                Ok(Stmt::Vacuum)
            }
            "ANALYZE" | "ANALYSE" => {
                self.pos += 1;
                let table = if self.at_eof() || self.peek_sym(";") {
                    None
                } else {
                    Some(self.qualified_name()?)
                };
                Ok(Stmt::Analyze { table })
            }
            "INSTALL" | "LOAD" => {
                if !matches!(self.dialect, TextDialect::Duckdb | TextDialect::Generic) {
                    return self.err_near();
                }
                self.pos += 1;
                Ok(Stmt::LoadExtension { name: self.identifier()? })
            }
            _ => self.err_near(),
        }
    }

    fn insert(&mut self) -> Result<Stmt, ParseError> {
        let mut or_replace = false;
        if self.eat_kw("REPLACE") {
            if !matches!(
                self.dialect,
                TextDialect::Mysql | TextDialect::Sqlite | TextDialect::Generic
            ) {
                return self.err("syntax error at or near \"REPLACE\"");
            }
            or_replace = true;
        } else {
            self.expect_kw("INSERT")?;
            if self.eat_kw("OR") {
                self.expect_kw("REPLACE")?;
                or_replace = true;
            }
        }
        self.expect_kw("INTO")?;
        let table = self.qualified_name()?;
        let mut columns = Vec::new();
        if self.peek_sym("(") {
            self.pos += 1;
            loop {
                columns.push(self.identifier()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        let source = if self.eat_kw("DEFAULT") {
            self.expect_kw("VALUES")?;
            InsertSource::DefaultValues
        } else if self.peek_kw("VALUES") {
            self.pos += 1;
            InsertSource::Values(self.values_rows()?)
        } else if self.peek_kw("SELECT") || self.peek_kw("WITH") || self.peek_sym("(") {
            InsertSource::Query(Box::new(self.query()?))
        } else {
            return self.err_near();
        };
        Ok(Stmt::Insert(InsertStmt { table, columns, source, or_replace }))
    }

    fn values_rows(&mut self) -> Result<Vec<Vec<Expr>>, ParseError> {
        let mut rows = Vec::new();
        loop {
            // MySQL permits `VALUES ROW(...)`; accept the ROW noise word.
            self.eat_kw("ROW");
            self.expect_sym("(")?;
            let mut row = Vec::new();
            if !self.peek_sym(")") {
                loop {
                    row.push(self.expr(0)?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(rows)
    }

    fn update(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("UPDATE")?;
        let table = self.qualified_name()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_sym("=")?;
            assignments.push((col, self.expr(0)?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr(0)?) } else { None };
        Ok(Stmt::Update(UpdateStmt { table, assignments, where_clause }))
    }

    fn delete(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.qualified_name()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr(0)?) } else { None };
        Ok(Stmt::Delete(DeleteStmt { table, where_clause }))
    }

    fn create(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("CREATE")?;
        let or_replace = self.eat_kw("OR") && {
            self.expect_kw("REPLACE")?;
            true
        };
        let temporary = self.eat_kw("TEMP") || self.eat_kw("TEMPORARY");
        let unique = self.eat_kw("UNIQUE");

        if self.eat_kw("TABLE") {
            return self.create_table(temporary);
        }
        if self.eat_kw("INDEX") {
            return self.create_index(unique);
        }
        if self.eat_kw("VIEW") {
            return self.create_view(or_replace);
        }
        if self.eat_kw("SCHEMA") {
            let if_not_exists = self.if_not_exists()?;
            return Ok(Stmt::CreateSchema { name: self.qualified_name()?, if_not_exists });
        }
        if self.eat_kw("FUNCTION") {
            return self.create_function();
        }
        self.err_near()
    }

    fn if_not_exists(&mut self) -> Result<bool, ParseError> {
        if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn if_exists(&mut self) -> Result<bool, ParseError> {
        if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn create_table(&mut self, temporary: bool) -> Result<Stmt, ParseError> {
        let if_not_exists = self.if_not_exists()?;
        let name = self.qualified_name()?;
        if self.eat_kw("AS") {
            let query = self.query()?;
            return Ok(Stmt::CreateTable(CreateTableStmt {
                name,
                if_not_exists,
                temporary,
                columns: Vec::new(),
                as_query: Some(Box::new(query)),
            }));
        }
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            // Table-level constraints are parsed and discarded: the engines
            // do not enforce FK constraints, matching the suites' usage.
            if self.peek_table_constraint() {
                self.skip_table_constraint()?;
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Stmt::CreateTable(CreateTableStmt {
            name,
            if_not_exists,
            temporary,
            columns,
            as_query: None,
        }))
    }

    fn peek_table_constraint(&self) -> bool {
        self.peek()
            .map(|t| {
                t.is_keyword("PRIMARY")
                    || t.is_keyword("FOREIGN")
                    || t.is_keyword("CONSTRAINT")
                    || t.is_keyword("CHECK")
                    || (t.is_keyword("UNIQUE")
                        && self.peek_at(1).map(|n| n.is_symbol("(")).unwrap_or(false))
            })
            .unwrap_or(false)
    }

    fn skip_table_constraint(&mut self) -> Result<(), ParseError> {
        // Consume tokens, balancing parens, until a top-level ',' or ')'.
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 && (t.is_symbol(",") || t.is_symbol(")")) {
                return Ok(());
            }
            if t.is_symbol("(") {
                depth += 1;
            } else if t.is_symbol(")") {
                depth -= 1;
            }
            self.pos += 1;
        }
        self.err("unterminated table constraint")
    }

    fn column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.identifier()?;
        let type_name = self.type_name()?;
        let mut def = ColumnDef {
            name,
            type_name,
            not_null: false,
            primary_key: false,
            unique: false,
            default: None,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.eat_kw("NULL") {
                // explicit nullable: no-op
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
                self.eat_kw("AUTOINCREMENT");
                self.eat_kw("AUTO_INCREMENT");
            } else if self.eat_kw("UNIQUE") {
                def.unique = true;
            } else if self.eat_kw("DEFAULT") {
                def.default = Some(self.expr(10)?);
            } else if self.eat_kw("CHECK") {
                self.expect_sym("(")?;
                let _ = self.expr(0)?;
                self.expect_sym(")")?;
            } else if self.eat_kw("REFERENCES") {
                let _ = self.qualified_name()?;
                if self.eat_sym("(") {
                    let _ = self.identifier()?;
                    self.expect_sym(")")?;
                }
            } else if self.eat_kw("COLLATE") {
                let _ = self.identifier()?;
            } else {
                break;
            }
        }
        Ok(def)
    }

    /// Parse a type name, including DuckDB nested types when the dialect
    /// allows them.
    pub fn type_name(&mut self) -> Result<TypeName, ParseError> {
        let nested_ok = matches!(self.dialect, TextDialect::Duckdb | TextDialect::Generic);
        let head = self.identifier()?.to_uppercase();
        let mut ty = match head.as_str() {
            "STRUCT" if nested_ok => {
                self.expect_sym("(")?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.identifier()?;
                    let fty = self.type_name()?;
                    fields.push((fname, fty));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                TypeName::Struct(fields)
            }
            "UNION" if nested_ok => {
                self.expect_sym("(")?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.identifier()?;
                    let fty = self.type_name()?;
                    fields.push((fname, fty));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                TypeName::Union(fields)
            }
            "LIST" if nested_ok && self.peek_sym("(") => {
                self.pos += 1;
                let inner = self.type_name()?;
                self.expect_sym(")")?;
                TypeName::List(Box::new(inner))
            }
            _ => {
                // Multi-word types: DOUBLE PRECISION, CHARACTER VARYING, ...
                let mut name = head;
                while self
                    .peek()
                    .map(|t| t.is_keyword("PRECISION") || t.is_keyword("VARYING"))
                    .unwrap_or(false)
                {
                    name.push(' ');
                    name.push_str(&self.advance().unwrap().upper());
                }
                let mut params = Vec::new();
                if self.peek_sym("(") {
                    self.pos += 1;
                    loop {
                        match self.peek() {
                            Some(t) if t.kind == TokenKind::NumberLit => {
                                params.push(t.text.parse::<i64>().unwrap_or(0));
                                self.pos += 1;
                            }
                            _ => return self.err_near(),
                        }
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                }
                TypeName::Simple { name, params }
            }
        };
        // Array suffix `[]`, possibly repeated.
        while self.peek_sym("[") && self.peek_at(1).map(|t| t.is_symbol("]")).unwrap_or(false) {
            self.pos += 2;
            ty = TypeName::List(Box::new(ty));
        }
        Ok(ty)
    }

    fn create_index(&mut self, unique: bool) -> Result<Stmt, ParseError> {
        let if_not_exists = self.if_not_exists()?;
        let name = self.qualified_name()?;
        self.expect_kw("ON")?;
        let table = self.qualified_name()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.identifier()?);
            // Ignore per-column ASC/DESC.
            self.eat_kw("ASC");
            self.eat_kw("DESC");
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Stmt::CreateIndex { name, table, columns, unique, if_not_exists })
    }

    fn create_view(&mut self, or_replace: bool) -> Result<Stmt, ParseError> {
        let name = self.qualified_name()?;
        let mut columns = Vec::new();
        if self.peek_sym("(") {
            self.pos += 1;
            loop {
                columns.push(self.identifier()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        self.expect_kw("AS")?;
        let query = self.query()?;
        Ok(Stmt::CreateView { name, columns, query, or_replace })
    }

    /// Loose CREATE FUNCTION parse, enough for Listing 7-style statements:
    /// extracts the library string (if `AS 'lib' [, 'sym']`) and language.
    fn create_function(&mut self) -> Result<Stmt, ParseError> {
        let name = self.qualified_name()?;
        // Skip the parenthesised argument list.
        if self.peek_sym("(") {
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if t.is_symbol("(") {
                    depth += 1;
                } else if t.is_symbol(")") {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                self.pos += 1;
            }
        }
        let mut library = None;
        let mut language = String::from("sql");
        while let Some(t) = self.peek() {
            if t.is_keyword("AS") {
                self.pos += 1;
                // `AS 'library'` or `AS $$body$$` — also tolerate a stray
                // ':' before the string as in the paper's Listing 7.
                self.eat_sym(":");
                if let Some(s) = self.peek() {
                    if s.kind == TokenKind::StringLit {
                        library = Some(unquote_string(&s.text));
                        self.pos += 1;
                        if self.eat_sym(",") {
                            // symbol name string
                            if self.peek().map(|t| t.kind == TokenKind::StringLit).unwrap_or(false)
                            {
                                self.pos += 1;
                            }
                        }
                    }
                }
            } else if t.is_keyword("LANGUAGE") {
                self.pos += 1;
                language = self.identifier()?.to_lowercase();
            } else if t.is_symbol(";") {
                break;
            } else {
                self.pos += 1;
            }
        }
        Ok(Stmt::CreateFunction { name, language, library })
    }

    fn drop(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            let if_exists = self.if_exists()?;
            let mut names = vec![self.qualified_name()?];
            while self.eat_sym(",") {
                names.push(self.qualified_name()?);
            }
            self.eat_kw("CASCADE");
            self.eat_kw("RESTRICT");
            return Ok(Stmt::DropTable { names, if_exists });
        }
        if self.eat_kw("INDEX") {
            let if_exists = self.if_exists()?;
            let name = self.qualified_name()?;
            // MySQL: DROP INDEX i ON t
            if self.eat_kw("ON") {
                let _ = self.qualified_name()?;
            }
            return Ok(Stmt::DropIndex { name, if_exists });
        }
        if self.eat_kw("VIEW") {
            let if_exists = self.if_exists()?;
            return Ok(Stmt::DropView { name: self.qualified_name()?, if_exists });
        }
        if self.eat_kw("SCHEMA") {
            let if_exists = self.if_exists()?;
            let name = self.qualified_name()?;
            let cascade = self.eat_kw("CASCADE");
            self.eat_kw("RESTRICT");
            return Ok(Stmt::DropSchema { name, if_exists, cascade });
        }
        self.err_near()
    }

    fn alter(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("ALTER")?;
        if self.eat_kw("TABLE") {
            let table = self.qualified_name()?;
            let action = if self.eat_kw("ADD") {
                self.eat_kw("COLUMN");
                AlterTableAction::AddColumn(self.column_def()?)
            } else if self.eat_kw("DROP") {
                self.eat_kw("COLUMN");
                let if_exists = self.if_exists()?;
                AlterTableAction::DropColumn { name: self.identifier()?, if_exists }
            } else if self.eat_kw("RENAME") {
                if self.eat_kw("TO") {
                    AlterTableAction::RenameTo(self.qualified_name()?)
                } else {
                    self.eat_kw("COLUMN");
                    let old = self.identifier()?;
                    self.expect_kw("TO")?;
                    AlterTableAction::RenameColumn { old, new: self.identifier()? }
                }
            } else {
                return self.err_near();
            };
            return Ok(Stmt::AlterTable { table, action });
        }
        if self.eat_kw("SCHEMA") {
            let name = self.qualified_name()?;
            self.expect_kw("RENAME")?;
            self.expect_kw("TO")?;
            return Ok(Stmt::AlterSchema { name, rename_to: self.qualified_name()? });
        }
        self.err_near()
    }

    fn set(&mut self) -> Result<Stmt, ParseError> {
        if self.dialect == TextDialect::Sqlite {
            // SQLite has no SET statement; its configuration is PRAGMA.
            return self.err("syntax error at or near \"SET\"");
        }
        self.expect_kw("SET")?;
        self.eat_kw("SESSION");
        self.eat_kw("GLOBAL");
        self.eat_kw("LOCAL");
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Param => {
                // MySQL user variable @x.
                let s = t.text.clone();
                self.pos += 1;
                s
            }
            _ => self.qualified_name()?,
        };
        let value = if self.eat_sym("=") || self.eat_kw("TO") {
            if self.eat_kw("DEFAULT") {
                SetValue::Default
            } else {
                match self.peek() {
                    Some(t)
                        if t.kind == TokenKind::Word
                            && !t.is_keyword("TRUE")
                            && !t.is_keyword("FALSE")
                            && !t.is_keyword("NULL")
                            && !self
                                .peek_at(1)
                                .map(|n| n.is_symbol("(") || n.is_symbol("."))
                                .unwrap_or(false) =>
                    {
                        let v = t.text.clone();
                        self.pos += 1;
                        // Comma-separated ident lists (search_path): join.
                        let mut full = v;
                        while self.eat_sym(",") {
                            full.push(',');
                            full.push_str(&self.identifier()?);
                        }
                        SetValue::Ident(full)
                    }
                    _ => SetValue::Expr(self.expr(0)?),
                }
            }
        } else {
            return self.err_near();
        };
        Ok(Stmt::Set { name, value })
    }

    fn pragma(&mut self) -> Result<Stmt, ParseError> {
        if !matches!(self.dialect, TextDialect::Sqlite | TextDialect::Duckdb | TextDialect::Generic)
        {
            return self.err("syntax error at or near \"PRAGMA\"");
        }
        self.expect_kw("PRAGMA")?;
        let name = self.qualified_name()?;
        let value = if self.eat_sym("=") {
            Some(self.pragma_value()?)
        } else if self.peek_sym("(") {
            self.pos += 1;
            let v = self.pragma_value()?;
            self.expect_sym(")")?;
            Some(v)
        } else {
            None
        };
        Ok(Stmt::Pragma { name, value })
    }

    fn pragma_value(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(t)
                if matches!(
                    t.kind,
                    TokenKind::Word | TokenKind::NumberLit | TokenKind::QuotedIdent
                ) =>
            {
                let v = t.text.clone();
                self.pos += 1;
                Ok(v)
            }
            Some(t) if t.kind == TokenKind::StringLit => {
                let v = unquote_string(&t.text);
                self.pos += 1;
                Ok(v)
            }
            _ => self.err_near(),
        }
    }

    fn explain(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("EXPLAIN")?;
        if self.eat_kw("QUERY") {
            self.expect_kw("PLAN")?; // SQLite: EXPLAIN QUERY PLAN
        }
        let analyze = self.eat_kw("ANALYZE");
        let inner = self.statement()?;
        Ok(Stmt::Explain { analyze, inner: Box::new(inner) })
    }

    fn copy(&mut self) -> Result<Stmt, ParseError> {
        if self.dialect == TextDialect::Sqlite || self.dialect == TextDialect::Mysql {
            return self.err("syntax error at or near \"COPY\"");
        }
        self.expect_kw("COPY")?;
        let table = self.qualified_name()?;
        // Optional column list.
        if self.peek_sym("(") {
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if t.is_symbol("(") {
                    depth += 1;
                } else if t.is_symbol(")") {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                self.pos += 1;
            }
        }
        let from = if self.eat_kw("FROM") {
            true
        } else if self.eat_kw("TO") {
            false
        } else {
            return self.err_near();
        };
        let path = match self.peek() {
            Some(t) if t.kind == TokenKind::StringLit => {
                let p = unquote_string(&t.text);
                self.pos += 1;
                p
            }
            Some(t) if t.is_keyword("STDIN") || t.is_keyword("STDOUT") => {
                let p = t.upper();
                self.pos += 1;
                p
            }
            _ => return self.err_near(),
        };
        // Swallow trailing options (WITH (...), DELIMITER ..., CSV ...).
        while !self.at_eof() && !self.peek_sym(";") {
            self.pos += 1;
        }
        Ok(Stmt::Copy { table, path, from })
    }

    fn show(&mut self) -> Result<Stmt, ParseError> {
        if self.dialect == TextDialect::Sqlite {
            return self.err("syntax error at or near \"SHOW\"");
        }
        self.expect_kw("SHOW")?;
        let name = if self.eat_kw("ALL") { "ALL".to_string() } else { self.qualified_name()? };
        Ok(Stmt::Show { name })
    }

    fn use_stmt(&mut self) -> Result<Stmt, ParseError> {
        if !matches!(self.dialect, TextDialect::Mysql | TextDialect::Duckdb | TextDialect::Generic)
        {
            return self.err("syntax error at or near \"USE\"");
        }
        self.expect_kw("USE")?;
        Ok(Stmt::Use { database: self.qualified_name()? })
    }

    // ---- queries ---------------------------------------------------------

    /// Parse a full query (`[WITH ...] body [ORDER BY ...] [LIMIT ...]`).
    pub fn query(&mut self) -> Result<SelectStmt, ParseError> {
        let with = if self.peek_kw("WITH") { Some(self.with_clause()?) } else { None };
        let body = self.set_expr(0)?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr(0)?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                let nulls_first = if self.eat_kw("NULLS") {
                    if self.eat_kw("FIRST") {
                        Some(true)
                    } else {
                        self.expect_kw("LAST")?;
                        Some(false)
                    }
                } else {
                    None
                };
                order_by.push(OrderItem { expr, desc, nulls_first });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            let first = self.expr(0)?;
            if self.eat_sym(",") {
                // MySQL/SQLite: LIMIT offset, count
                offset = Some(first);
                limit = Some(self.expr(0)?);
            } else {
                limit = Some(first);
            }
        }
        if self.eat_kw("OFFSET") {
            offset = Some(self.expr(0)?);
        }
        Ok(SelectStmt { with, body, order_by, limit, offset })
    }

    fn with_clause(&mut self) -> Result<WithClause, ParseError> {
        self.expect_kw("WITH")?;
        let recursive = self.eat_kw("RECURSIVE");
        let mut ctes = Vec::new();
        loop {
            let name = self.identifier()?;
            let mut columns = Vec::new();
            if self.peek_sym("(") {
                self.pos += 1;
                loop {
                    columns.push(self.identifier()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            self.expect_kw("AS")?;
            self.eat_kw("MATERIALIZED");
            self.expect_sym("(")?;
            let query = self.query()?;
            self.expect_sym(")")?;
            ctes.push(Cte { name, columns, query });
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(WithClause { recursive, ctes })
    }

    /// Set-operation precedence: INTERSECT binds tighter than UNION/EXCEPT.
    fn set_expr(&mut self, min_prec: u8) -> Result<SetExpr, ParseError> {
        let mut left = self.set_primary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(t) if t.is_keyword("UNION") => (SetOp::Union, 1u8),
                Some(t) if t.is_keyword("EXCEPT") => (SetOp::Except, 1),
                Some(t) if t.is_keyword("INTERSECT") => (SetOp::Intersect, 2),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let all = self.eat_kw("ALL");
            if !all {
                self.eat_kw("DISTINCT");
            }
            let right = self.set_expr(prec + 1)?;
            left = SetExpr::SetOp { op, all, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn set_primary(&mut self) -> Result<SetExpr, ParseError> {
        if self.eat_sym("(") {
            let q = self.query()?;
            self.expect_sym(")")?;
            return Ok(SetExpr::Query(Box::new(q)));
        }
        if self.eat_kw("VALUES") {
            return Ok(SetExpr::Values(self.values_rows()?));
        }
        Ok(SetExpr::Select(Box::new(self.select_core()?)))
    }

    fn select_core(&mut self) -> Result<SelectCore, ParseError> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr(0)?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr(0)?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr(0)?) } else { None };
        Ok(SelectCore { distinct, projection, from, where_clause, group_by, having })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // t.* qualified wildcard
        if let (Some(t0), Some(t1), Some(t2)) = (self.peek(), self.peek_at(1), self.peek_at(2)) {
            if t0.kind == TokenKind::Word && t1.is_symbol(".") && t2.is_symbol("*") {
                let table = t0.text.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(table));
            }
        }
        let expr = self.expr(0)?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// Parse `[AS] alias` where a bare alias word must not be a clause
    /// keyword.
    fn alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("AS") {
            return Ok(Some(self.identifier()?));
        }
        if let Some(t) = self.peek() {
            if t.kind == TokenKind::QuotedIdent {
                let a = unquote_ident(&t.text);
                self.pos += 1;
                return Ok(Some(a));
            }
            if t.kind == TokenKind::Word && !is_reserved_after_expr(&t.upper()) {
                let a = t.text.clone();
                self.pos += 1;
                return Ok(Some(a));
            }
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("RIGHT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Right
            } else if self.eat_kw("FULL") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Full
            } else if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else if self.peek_kw("ASOF") {
                if !matches!(self.dialect, TextDialect::Duckdb | TextDialect::Generic) {
                    // ASOF JOIN is DuckDB-only (paper RQ4 failure example).
                    return self.err_near();
                }
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::AsOf
            } else {
                break;
            };
            let right = self.table_primary()?;
            let mut on = None;
            let mut using = Vec::new();
            if kind != JoinKind::Cross {
                if self.eat_kw("ON") {
                    on = Some(self.expr(0)?);
                } else if self.eat_kw("USING") {
                    self.expect_sym("(")?;
                    loop {
                        using.push(self.identifier()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                }
            }
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on, using };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableRef, ParseError> {
        if self.eat_sym("(") {
            let q = self.query()?;
            self.expect_sym(")")?;
            let alias = self.alias()?;
            return Ok(TableRef::Subquery { query: Box::new(q), alias });
        }
        let name = self.qualified_name()?;
        // Table-valued function?
        if self.peek_sym("(") {
            self.pos += 1;
            let mut args = Vec::new();
            if !self.peek_sym(")") {
                loop {
                    args.push(self.expr(0)?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            let alias = self.alias()?;
            return Ok(TableRef::Function { name, args, alias });
        }
        let alias = self.alias()?;
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions -----------------------------------------------------

    /// Pratt expression parser. `min_prec` is the minimum binding power.
    pub fn expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.prefix()?;
        loop {
            // Postfix `::` cast binds tightest.
            if self.peek_sym("::") {
                self.pos += 1;
                let ty = self.type_name()?;
                lhs = Expr::Cast { expr: Box::new(lhs), ty };
                continue;
            }
            // COLLATE postfix: parse and discard the collation name.
            if self.peek_kw("COLLATE") {
                self.pos += 1;
                let _ = self.identifier()?;
                continue;
            }
            let Some((op_prec, parsed)) = self.peek_infix()? else { break };
            if op_prec < min_prec {
                break;
            }
            match parsed {
                Infix::Binary(op, toks) => {
                    self.pos += toks;
                    let rhs = self.expr(op_prec + 1)?;
                    lhs = Expr::Binary { left: Box::new(lhs), op, right: Box::new(rhs) };
                }
                Infix::Special => {
                    lhs = self.special_infix(lhs)?;
                }
            }
        }
        Ok(lhs)
    }

    /// Look at the next token(s) and decide whether they begin an infix
    /// operation, returning its precedence.
    fn peek_infix(&self) -> Result<Option<(u8, Infix)>, ParseError> {
        let Some(t) = self.peek() else { return Ok(None) };
        let r = match t.kind {
            TokenKind::Operator => match t.text.as_str() {
                "||" => Some((8, Infix::Binary(BinaryOp::Concat, 1))),
                "+" => Some((8, Infix::Binary(BinaryOp::Add, 1))),
                "-" => Some((8, Infix::Binary(BinaryOp::Sub, 1))),
                "*" => Some((9, Infix::Binary(BinaryOp::Mul, 1))),
                "/" => Some((9, Infix::Binary(BinaryOp::Div, 1))),
                "%" => Some((9, Infix::Binary(BinaryOp::Mod, 1))),
                "=" | "==" => Some((4, Infix::Binary(BinaryOp::Eq, 1))),
                "<>" | "!=" => Some((4, Infix::Binary(BinaryOp::NotEq, 1))),
                "<" => Some((4, Infix::Binary(BinaryOp::Lt, 1))),
                ">" => Some((4, Infix::Binary(BinaryOp::Gt, 1))),
                "<=" => Some((4, Infix::Binary(BinaryOp::LtEq, 1))),
                ">=" => Some((4, Infix::Binary(BinaryOp::GtEq, 1))),
                "&" => Some((6, Infix::Binary(BinaryOp::BitAnd, 1))),
                "|" => Some((5, Infix::Binary(BinaryOp::BitOr, 1))),
                "#" if self.dialect != TextDialect::Mysql => {
                    Some((5, Infix::Binary(BinaryOp::BitXor, 1)))
                }
                "<<" => Some((7, Infix::Binary(BinaryOp::ShiftLeft, 1))),
                ">>" => Some((7, Infix::Binary(BinaryOp::ShiftRight, 1))),
                "~" if matches!(
                    self.dialect,
                    TextDialect::Postgres | TextDialect::Duckdb | TextDialect::Generic
                ) =>
                {
                    Some((4, Infix::Binary(BinaryOp::RegexMatch, 1)))
                }
                _ => None,
            },
            TokenKind::Word => match t.upper().as_str() {
                "AND" => Some((2, Infix::Binary(BinaryOp::And, 1))),
                "OR" => Some((1, Infix::Binary(BinaryOp::Or, 1))),
                "DIV" if matches!(self.dialect, TextDialect::Mysql | TextDialect::Generic) => {
                    Some((9, Infix::Binary(BinaryOp::IntDiv, 1)))
                }
                "MOD" if matches!(self.dialect, TextDialect::Mysql | TextDialect::Generic) => {
                    Some((9, Infix::Binary(BinaryOp::Mod, 1)))
                }
                "IS" | "IN" | "BETWEEN" | "LIKE" | "NOT" => Some((4, Infix::Special)),
                "ILIKE"
                    if matches!(
                        self.dialect,
                        TextDialect::Postgres | TextDialect::Duckdb | TextDialect::Generic
                    ) =>
                {
                    Some((4, Infix::Special))
                }
                _ => None,
            },
            _ => None,
        };
        Ok(r)
    }

    /// IS [NOT] NULL / IS [NOT] DISTINCT FROM / [NOT] IN / [NOT] BETWEEN /
    /// [NOT] LIKE / ILIKE.
    fn special_infix(&mut self, lhs: Expr) -> Result<Expr, ParseError> {
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            if self.eat_kw("NULL") {
                return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
            }
            if self.eat_kw("DISTINCT") {
                self.expect_kw("FROM")?;
                let rhs = self.expr(5)?;
                return Ok(Expr::IsDistinctFrom {
                    left: Box::new(lhs),
                    right: Box::new(rhs),
                    negated: !negated,
                });
            }
            // IS TRUE / IS FALSE
            if self.eat_kw("TRUE") {
                let e = Expr::Binary {
                    left: Box::new(lhs),
                    op: BinaryOp::Eq,
                    right: Box::new(Expr::Literal(Literal::Boolean(true))),
                };
                return Ok(if negated {
                    Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }
                } else {
                    e
                });
            }
            if self.eat_kw("FALSE") {
                let e = Expr::Binary {
                    left: Box::new(lhs),
                    op: BinaryOp::Eq,
                    right: Box::new(Expr::Literal(Literal::Boolean(false))),
                };
                return Ok(if negated {
                    Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }
                } else {
                    e
                });
            }
            return self.err_near();
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            if self.peek_kw("SELECT") || self.peek_kw("WITH") || self.peek_kw("VALUES") {
                let q = self.query()?;
                self.expect_sym(")")?;
                return Ok(Expr::InSubquery { expr: Box::new(lhs), query: Box::new(q), negated });
            }
            let mut list = Vec::new();
            if !self.peek_sym(")") {
                loop {
                    list.push(self.expr(0)?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList { expr: Box::new(lhs), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.expr(5)?;
            self.expect_kw("AND")?;
            let high = self.expr(5)?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.expr(5)?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
                case_insensitive: false,
            });
        }
        if self.eat_kw("ILIKE") {
            let pattern = self.expr(5)?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
                case_insensitive: true,
            });
        }
        self.err_near()
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        let Some(t) = self.peek() else {
            return self.err("unexpected end of expression");
        };
        match t.kind {
            TokenKind::NumberLit => {
                let text = t.text.clone();
                self.pos += 1;
                Ok(Expr::Literal(parse_number(&text)))
            }
            TokenKind::StringLit => {
                let text = t.text.clone();
                self.pos += 1;
                if let Some(hex) = text.strip_prefix(|c| c == 'x' || c == 'X') {
                    let inner = hex.trim_matches('\'');
                    return Ok(Expr::Literal(Literal::Blob(parse_hex(inner))));
                }
                Ok(Expr::Literal(Literal::String(unquote_string(&text))))
            }
            TokenKind::Param => {
                let text = t.text.clone();
                self.pos += 1;
                Ok(Expr::Parameter(text))
            }
            TokenKind::Operator | TokenKind::Punct => match t.text.as_str() {
                "-" => {
                    self.pos += 1;
                    Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(self.expr(10)?) })
                }
                "+" => {
                    self.pos += 1;
                    Ok(Expr::Unary { op: UnaryOp::Pos, expr: Box::new(self.expr(10)?) })
                }
                "~" => {
                    self.pos += 1;
                    Ok(Expr::Unary { op: UnaryOp::BitNot, expr: Box::new(self.expr(10)?) })
                }
                "(" => self.paren_expr(),
                "[" if matches!(self.dialect, TextDialect::Duckdb | TextDialect::Generic) => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    if !self.peek_sym("]") {
                        loop {
                            items.push(self.expr(0)?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym("]")?;
                    Ok(Expr::Array(items))
                }
                "{" if matches!(self.dialect, TextDialect::Duckdb | TextDialect::Generic) => {
                    self.pos += 1;
                    let mut fields = Vec::new();
                    if !self.peek_sym("}") {
                        loop {
                            let key = match self.peek() {
                                Some(t) if t.kind == TokenKind::StringLit => {
                                    let k = unquote_string(&t.text);
                                    self.pos += 1;
                                    k
                                }
                                _ => self.identifier()?,
                            };
                            self.expect_sym(":")?;
                            fields.push((key, self.expr(0)?));
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym("}")?;
                    Ok(Expr::Struct(fields))
                }
                _ => self.err_near(),
            },
            TokenKind::Word => self.word_prefix(),
            TokenKind::QuotedIdent => {
                let name = unquote_ident(&t.text);
                self.pos += 1;
                self.column_or_qualified(name)
            }
            TokenKind::Comment => unreachable!("comments are filtered by tokenize"),
        }
    }

    fn word_prefix(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().expect("caller checked");
        let upper = t.upper();
        match upper.as_str() {
            "NULL" => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Null))
            }
            "TRUE" => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            "FALSE" => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            "NOT" => {
                self.pos += 1;
                // NOT EXISTS special-case.
                if self.peek_kw("EXISTS") {
                    self.pos += 1;
                    self.expect_sym("(")?;
                    let q = self.query()?;
                    self.expect_sym(")")?;
                    return Ok(Expr::Exists { query: Box::new(q), negated: true });
                }
                Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(self.expr(3)?) })
            }
            "EXISTS" => {
                self.pos += 1;
                self.expect_sym("(")?;
                let q = self.query()?;
                self.expect_sym(")")?;
                Ok(Expr::Exists { query: Box::new(q), negated: false })
            }
            "CASE" => self.case_expr(),
            "CAST" => {
                self.pos += 1;
                self.expect_sym("(")?;
                let e = self.expr(0)?;
                self.expect_kw("AS")?;
                let ty = self.type_name()?;
                self.expect_sym(")")?;
                Ok(Expr::Cast { expr: Box::new(e), ty })
            }
            "INTERVAL" => {
                self.pos += 1;
                match self.peek() {
                    Some(t) if t.kind == TokenKind::StringLit => {
                        let v = unquote_string(&t.text);
                        self.pos += 1;
                        // Optional unit word (INTERVAL '1' DAY).
                        let unit = self.peek().and_then(|t| {
                            if t.kind == TokenKind::Word && is_interval_unit(&t.upper()) {
                                Some(t.text.clone())
                            } else {
                                None
                            }
                        });
                        let text = if let Some(u) = unit {
                            self.pos += 1;
                            format!("{v} {u}")
                        } else {
                            v
                        };
                        Ok(Expr::Interval(text))
                    }
                    _ => self.err_near(),
                }
            }
            "ARRAY"
                if matches!(
                    self.dialect,
                    TextDialect::Postgres | TextDialect::Duckdb | TextDialect::Generic
                ) && self.peek_at(1).map(|t| t.is_symbol("[")).unwrap_or(false) =>
            {
                self.pos += 2; // ARRAY [
                let mut items = Vec::new();
                if !self.peek_sym("]") {
                    loop {
                        items.push(self.expr(0)?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym("]")?;
                Ok(Expr::Array(items))
            }
            "SELECT" => {
                // A bare SELECT cannot start an expression; subqueries come
                // parenthesised. Report like a DBMS would.
                self.err_near()
            }
            _ => {
                let name = self.identifier()?;
                // Function call?
                if self.peek_sym("(") {
                    self.pos += 1;
                    let mut distinct = false;
                    let mut star = false;
                    let mut args = Vec::new();
                    if self.eat_sym("*") {
                        star = true;
                    } else if !self.peek_sym(")") {
                        distinct = self.eat_kw("DISTINCT");
                        loop {
                            args.push(self.expr(0)?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(Expr::Function { name: name.to_lowercase(), args, distinct, star });
                }
                self.column_or_qualified(name)
            }
        }
    }

    fn column_or_qualified(&mut self, first: String) -> Result<Expr, ParseError> {
        if self.peek_sym(".")
            && self
                .peek_at(1)
                .map(|t| matches!(t.kind, TokenKind::Word | TokenKind::QuotedIdent))
                .unwrap_or(false)
        {
            self.pos += 1;
            let name = self.identifier()?;
            return Ok(Expr::Column { table: Some(first), name });
        }
        Ok(Expr::Column { table: None, name: first })
    }

    fn paren_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_sym("(")?;
        if self.peek_kw("SELECT") || self.peek_kw("WITH") || self.peek_kw("VALUES") {
            let q = self.query()?;
            self.expect_sym(")")?;
            return Ok(Expr::Subquery(Box::new(q)));
        }
        let first = self.expr(0)?;
        if self.eat_sym(",") {
            let mut items = vec![first];
            loop {
                items.push(self.expr(0)?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::Row(items));
        }
        self.expect_sym(")")?;
        Ok(first)
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("CASE")?;
        let operand = if self.peek_kw("WHEN") { None } else { Some(Box::new(self.expr(0)?)) };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr(0)?;
            self.expect_kw("THEN")?;
            let val = self.expr(0)?;
            branches.push((cond, val));
        }
        if branches.is_empty() {
            return self.err_near();
        }
        let else_branch = if self.eat_kw("ELSE") { Some(Box::new(self.expr(0)?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_branch })
    }
}

enum Infix {
    Binary(BinaryOp, usize),
    Special,
}

/// Words the printer must quote to use as identifiers: everything that ends
/// an expression position plus keywords with a prefix/statement meaning.
pub(crate) fn is_reserved_word(upper: &str) -> bool {
    is_reserved_after_expr(upper)
        || matches!(
            upper,
            "NULL"
                | "TRUE"
                | "FALSE"
                | "CASE"
                | "CAST"
                | "EXISTS"
                | "INTERVAL"
                | "ARRAY"
                | "DISTINCT"
                | "HAVING"
                | "LIMIT"
                | "PRIMARY"
                | "FOREIGN"
                | "CONSTRAINT"
                | "CHECK"
                | "REFERENCES"
                | "DEFAULT"
                | "UNIQUE"
                | "TABLE"
                | "INDEX"
                | "VIEW"
                | "SCHEMA"
                | "CREATE"
                | "DROP"
                | "ALTER"
                | "INSERT"
                | "UPDATE"
                | "DELETE"
                | "REPLACE"
                | "WITH"
                | "GROUP"
                | "ORDER"
                | "BY"
                | "ALL"
                | "ANY"
                | "EXCEPT"
                | "ROW"
        )
}

/// Words that end an expression position and therefore cannot be bare
/// aliases.
fn is_reserved_after_expr(upper: &str) -> bool {
    matches!(
        upper,
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "OFFSET"
            | "UNION"
            | "INTERSECT"
            | "EXCEPT"
            | "ON"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "RIGHT"
            | "FULL"
            | "CROSS"
            | "ASOF"
            | "USING"
            | "AS"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
            | "AND"
            | "OR"
            | "NOT"
            | "SET"
            | "VALUES"
            | "SELECT"
            | "DESC"
            | "ASC"
            | "NULLS"
            | "WINDOW"
            | "RETURNING"
            | "INTO"
            | "FETCH"
            | "COLLATE"
            | "IS"
            | "IN"
            | "BETWEEN"
            | "LIKE"
            | "ILIKE"
            | "DIV"
            | "MOD"
    )
}

fn is_interval_unit(upper: &str) -> bool {
    matches!(
        upper,
        "YEAR"
            | "MONTH"
            | "DAY"
            | "HOUR"
            | "MINUTE"
            | "SECOND"
            | "YEARS"
            | "MONTHS"
            | "DAYS"
            | "HOURS"
            | "MINUTES"
            | "SECONDS"
    )
}

/// Parse a numeric literal; integers overflowing i64 fall back to f64,
/// matching common DBMS lexers.
fn parse_number(text: &str) -> Literal {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        return match i64::from_str_radix(hex, 16) {
            Ok(v) => Literal::Integer(v),
            Err(_) => Literal::Float(f64::INFINITY),
        };
    }
    if !text.contains('.') && !text.contains('e') && !text.contains('E') {
        if let Ok(v) = text.parse::<i64>() {
            return Literal::Integer(v);
        }
    }
    Literal::Float(text.parse::<f64>().unwrap_or(f64::NAN))
}

/// Remove quotes from a string literal and collapse doubled quotes.
#[allow(clippy::manual_strip)] // the `$tag$` wrapper length is reused on both ends
fn unquote_string(text: &str) -> String {
    let inner = text
        .strip_prefix(|c: char| matches!(c, 'E' | 'e' | 'N' | 'n' | 'B' | 'b' | 'X' | 'x'))
        .unwrap_or(text);
    let inner = if inner.starts_with('$') {
        // dollar-quoted: strip matching $tag$ wrappers
        if let Some(close) = inner[1..].find('$') {
            let tag = &inner[..close + 2];
            return inner[tag.len()..inner.len().saturating_sub(tag.len())].to_string();
        }
        inner
    } else {
        inner
    };
    let inner = inner.strip_prefix('\'').unwrap_or(inner);
    let inner = inner.strip_suffix('\'').unwrap_or(inner);
    inner.replace("''", "'")
}

/// Remove identifier quoting (double quotes, backticks, brackets).
fn unquote_ident(text: &str) -> String {
    let bytes = text.as_bytes();
    if bytes.len() >= 2 {
        match (bytes[0], bytes[bytes.len() - 1]) {
            (b'"', b'"') => return text[1..text.len() - 1].replace("\"\"", "\""),
            (b'`', b'`') => return text[1..text.len() - 1].replace("``", "`"),
            (b'[', b']') => return text[1..text.len() - 1].to_string(),
            _ => {}
        }
    }
    text.to_string()
}

fn parse_hex(s: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes: Vec<u8> = s.bytes().filter(u8::is_ascii_hexdigit).collect();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).unwrap_or(0) as u8;
        let lo = (pair[1] as char).to_digit(16).unwrap_or(0) as u8;
        out.push(hi << 4 | lo);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Stmt {
        parse_statement(sql, TextDialect::Generic)
            .unwrap_or_else(|e| panic!("parse failed for {sql:?}: {e}"))
    }

    fn parse_d(sql: &str, d: TextDialect) -> Result<Stmt, ParseError> {
        parse_statement(sql, d)
    }

    #[test]
    fn select_simple() {
        let stmt = parse("SELECT a, b FROM t1 WHERE c > a");
        let Stmt::Select(q) = stmt else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        assert_eq!(core.projection.len(), 2);
        assert_eq!(core.from.len(), 1);
        assert!(core.where_clause.is_some());
    }

    #[test]
    fn select_constant_no_from() {
        let stmt = parse("SELECT 1 + 2");
        let Stmt::Select(q) = stmt else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        assert!(core.from.is_empty());
    }

    #[test]
    fn arithmetic_precedence() {
        let Stmt::Select(q) = parse("SELECT 1 + 2 * 3") else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr, .. } = &core.projection[0] else { panic!() };
        // Must parse as 1 + (2 * 3).
        let Expr::Binary { op: BinaryOp::Add, right, .. } = expr else { panic!("got {expr:?}") };
        assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn and_or_precedence() {
        let Stmt::Select(q) = parse("SELECT * FROM t WHERE a OR b AND c") else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let Some(Expr::Binary { op: BinaryOp::Or, .. }) = &core.where_clause else {
            panic!("OR must be the top operator")
        };
    }

    #[test]
    fn div_keyword_mysql_only() {
        assert!(parse_d("SELECT 62 DIV 2", TextDialect::Mysql).is_ok());
        assert!(parse_d("SELECT 62 DIV 2", TextDialect::Generic).is_ok());
        // On other engines DIV is a syntax error (paper Listing 4).
        assert!(parse_d("SELECT 62 DIV 2", TextDialect::Sqlite).is_err());
        assert!(parse_d("SELECT 62 DIV 2", TextDialect::Postgres).is_err());
        assert!(parse_d("SELECT 62 DIV 2", TextDialect::Duckdb).is_err());
    }

    #[test]
    fn paper_listing4_div_expression() {
        // SELECT ALL 62 DIV ( + - 2 ) — from the paper.
        let stmt = parse_d("SELECT ALL 62 DIV ( + - 2 )", TextDialect::Mysql).unwrap();
        assert!(matches!(stmt, Stmt::Select(_)));
    }

    #[test]
    fn double_colon_cast_postgres_only() {
        let ok = parse_d("SELECT 1::text", TextDialect::Postgres).unwrap();
        let Stmt::Select(q) = ok else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr: Expr::Cast { .. }, .. } = &core.projection[0] else {
            panic!()
        };
        assert!(parse_d("SELECT 1::text", TextDialect::Mysql).is_err());
        assert!(parse_d("SELECT 1::text", TextDialect::Sqlite).is_err());
    }

    #[test]
    fn pragma_dialects() {
        assert!(parse_d("PRAGMA explain_output = OPTIMIZED_ONLY", TextDialect::Duckdb).is_ok());
        assert!(parse_d("PRAGMA table_info(t1)", TextDialect::Sqlite).is_ok());
        assert!(parse_d("PRAGMA foo", TextDialect::Postgres).is_err());
        assert!(parse_d("PRAGMA foo", TextDialect::Mysql).is_err());
    }

    #[test]
    fn set_dialects() {
        assert!(parse_d("SET search_path TO public", TextDialect::Postgres).is_ok());
        assert!(parse_d("SET default_null_order='nulls_first'", TextDialect::Duckdb).is_ok());
        assert!(parse_d("SET optimizer_search_depth = 62", TextDialect::Mysql).is_ok());
        assert!(parse_d("SET x = 1", TextDialect::Sqlite).is_err());
    }

    #[test]
    fn insert_values() {
        let Stmt::Insert(ins) = parse("INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4)")
        else {
            panic!()
        };
        assert_eq!(ins.table, "t1");
        assert_eq!(ins.columns, vec!["c", "b", "a"]);
        let InsertSource::Values(rows) = ins.source else { panic!() };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn insert_select() {
        let Stmt::Insert(ins) = parse("INSERT INTO t SELECT * FROM s") else { panic!() };
        assert!(matches!(ins.source, InsertSource::Query(_)));
    }

    #[test]
    fn update_stmt() {
        let Stmt::Update(u) = parse("UPDATE a SET b = b + 10 WHERE b > 0") else { panic!() };
        assert_eq!(u.table, "a");
        assert_eq!(u.assignments.len(), 1);
        assert!(u.where_clause.is_some());
    }

    #[test]
    fn delete_stmt() {
        let Stmt::Delete(d) = parse("DELETE FROM t WHERE a = 1") else { panic!() };
        assert_eq!(d.table, "t");
    }

    #[test]
    fn create_table() {
        let Stmt::CreateTable(ct) =
            parse("CREATE TABLE t1(a INTEGER, b INTEGER NOT NULL, c TEXT DEFAULT 'x')")
        else {
            panic!()
        };
        assert_eq!(ct.name, "t1");
        assert_eq!(ct.columns.len(), 3);
        assert!(ct.columns[1].not_null);
        assert!(ct.columns[2].default.is_some());
    }

    #[test]
    fn create_table_as() {
        let Stmt::CreateTable(ct) = parse("CREATE TABLE quantile AS SELECT 1 AS r") else {
            panic!()
        };
        assert!(ct.as_query.is_some());
    }

    #[test]
    fn create_table_nested_types_duckdb() {
        let sql =
            "CREATE TABLE tbl1 (union_struct UNION(str VARCHAR, obj STRUCT(k VARCHAR, v INT)))";
        let stmt = parse_d(sql, TextDialect::Duckdb).unwrap();
        let Stmt::CreateTable(ct) = stmt else { panic!() };
        let TypeName::Union(fields) = &ct.columns[0].type_name else { panic!() };
        assert_eq!(fields.len(), 2);
        assert!(matches!(fields[1].1, TypeName::Struct(_)));
    }

    #[test]
    fn varchar_length_param() {
        let Stmt::CreateTable(ct) = parse("CREATE TABLE t(v VARCHAR(10))") else { panic!() };
        let TypeName::Simple { name, params } = &ct.columns[0].type_name else { panic!() };
        assert_eq!(name, "VARCHAR");
        assert_eq!(params, &vec![10]);
    }

    #[test]
    fn table_constraints_skipped() {
        let stmt = parse("CREATE TABLE t(a INT, b INT, PRIMARY KEY (a, b), UNIQUE (b))");
        let Stmt::CreateTable(ct) = stmt else { panic!() };
        assert_eq!(ct.columns.len(), 2);
    }

    #[test]
    fn alter_schema_rename() {
        // Paper Listing 12: the DuckDB crash trigger.
        let Stmt::AlterSchema { name, rename_to } = parse("ALTER SCHEMA a RENAME TO b") else {
            panic!()
        };
        assert_eq!(name, "a");
        assert_eq!(rename_to, "b");
    }

    #[test]
    fn transactions() {
        assert_eq!(parse("BEGIN"), Stmt::Begin);
        assert_eq!(parse("BEGIN TRANSACTION"), Stmt::Begin);
        assert_eq!(parse("COMMIT"), Stmt::Commit);
        assert_eq!(parse("ROLLBACK"), Stmt::Rollback);
        assert!(parse_d("START TRANSACTION", TextDialect::Postgres).is_ok());
        assert!(parse_d("START TRANSACTION", TextDialect::Sqlite).is_err());
    }

    #[test]
    fn explain() {
        let Stmt::Explain { inner, analyze } = parse("EXPLAIN SELECT k FROM integers WHERE j=5")
        else {
            panic!()
        };
        assert!(!analyze);
        assert!(matches!(*inner, Stmt::Select(_)));
    }

    #[test]
    fn with_recursive_cte() {
        // Paper Listing 15 shape.
        let sql = "WITH RECURSIVE x(n) AS (SELECT 1 UNION ALL SELECT n+1 FROM x WHERE n IN (SELECT * FROM x)) SELECT * FROM x";
        let Stmt::Select(q) = parse(sql) else { panic!() };
        let with = q.with.unwrap();
        assert!(with.recursive);
        assert_eq!(with.ctes[0].name, "x");
        assert_eq!(with.ctes[0].columns, vec!["n"]);
    }

    #[test]
    fn nested_set_ops_in_cte() {
        // Paper Listing 14 shape (the MySQL crash).
        let sql = "WITH RECURSIVE t(x) AS (SELECT 1 UNION ALL (SELECT x+1 FROM t WHERE x < 4 UNION SELECT x*2 FROM t WHERE x >= 4 AND x < 8)) SELECT * FROM t ORDER BY x";
        let stmt = parse(sql);
        assert!(matches!(stmt, Stmt::Select(_)));
    }

    #[test]
    fn union_all_with_limit() {
        // Paper Listing 9 shape.
        let sql = "SELECT 1 UNION ALL SELECT * FROM range(2, 100) UNION ALL SELECT 999 LIMIT 5";
        let Stmt::Select(q) = parse(sql) else { panic!() };
        assert!(q.limit.is_some());
        assert!(matches!(q.body, SetExpr::SetOp { .. }));
    }

    #[test]
    fn generate_series_table_function() {
        // Paper Listing 16 shape.
        let sql = "SELECT count(*) FROM generate_series(9223372036854775807,9223372036854775807)";
        let Stmt::Select(q) = parse(sql) else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let TableRef::Function { name, args, .. } = &core.from[0] else { panic!() };
        assert_eq!(name, "generate_series");
        assert_eq!(args.len(), 2);
        assert_eq!(args[0], Expr::integer(9223372036854775807));
    }

    #[test]
    fn row_value_comparison() {
        // Paper Listing 17: SELECT (null, 0) > (0, 0).
        let Stmt::Select(q) = parse("SELECT (null, 0) > (0, 0)") else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr, .. } = &core.projection[0] else { panic!() };
        let Expr::Binary { left, op: BinaryOp::Gt, right } = expr else { panic!() };
        assert!(matches!(**left, Expr::Row(_)));
        assert!(matches!(**right, Expr::Row(_)));
    }

    #[test]
    fn array_literal_postgres() {
        // Paper Listing 8: SELECT ARRAY[1,2,3,'4'].
        let stmt = parse_d("SELECT ARRAY[1,2,3,'4']", TextDialect::Postgres).unwrap();
        let Stmt::Select(q) = stmt else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr: Expr::Array(items), .. } = &core.projection[0] else {
            panic!()
        };
        assert_eq!(items.len(), 4);
    }

    #[test]
    fn struct_literal_duckdb_only() {
        let sql = "SELECT {'k': 'key1', 'v': 1}";
        assert!(parse_d(sql, TextDialect::Duckdb).is_ok());
        assert!(parse_d(sql, TextDialect::Postgres).is_err());
    }

    #[test]
    fn case_expressions() {
        let stmt = parse("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t");
        assert!(matches!(stmt, Stmt::Select(_)));
        let stmt = parse("SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t");
        assert!(matches!(stmt, Stmt::Select(_)));
    }

    #[test]
    fn joins() {
        let sql = "SELECT a, test.b, c FROM test INNER JOIN test2 ON test.b = 2 ORDER BY c";
        let Stmt::Select(q) = parse(sql) else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let TableRef::Join { kind: JoinKind::Inner, on, .. } = &core.from[0] else { panic!() };
        assert!(on.is_some());
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn asof_join_duckdb_only() {
        let sql = "SELECT * FROM a ASOF JOIN b ON a.t >= b.t";
        assert!(parse_d(sql, TextDialect::Duckdb).is_ok());
        assert!(parse_d(sql, TextDialect::Postgres).is_err());
        assert!(parse_d(sql, TextDialect::Sqlite).is_err());
    }

    #[test]
    fn implicit_join_from_list() {
        let Stmt::Select(q) = parse("SELECT unit.total_profit FROM unit, unit2") else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        assert_eq!(core.from.len(), 2);
    }

    #[test]
    fn aggregates() {
        let Stmt::Select(q) =
            parse("SELECT count(*), sum(DISTINCT a) FROM t GROUP BY b HAVING count(*) > 1")
        else {
            panic!()
        };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr: Expr::Function { name, star, .. }, .. } = &core.projection[0]
        else {
            panic!()
        };
        assert_eq!(name, "count");
        assert!(star);
        let SelectItem::Expr { expr: Expr::Function { distinct, .. }, .. } = &core.projection[1]
        else {
            panic!()
        };
        assert!(distinct);
        assert_eq!(core.group_by.len(), 1);
        assert!(core.having.is_some());
    }

    #[test]
    fn in_between_like() {
        assert!(matches!(parse("SELECT * FROM t WHERE a IN (1, 2, 3)"), Stmt::Select(_)));
        assert!(matches!(
            parse("SELECT * FROM t WHERE a NOT IN (SELECT b FROM s)"),
            Stmt::Select(_)
        ));
        assert!(matches!(
            parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b LIKE 'x%'"),
            Stmt::Select(_)
        ));
        assert!(parse_d("SELECT * FROM t WHERE a ILIKE 'x%'", TextDialect::Postgres).is_ok());
        assert!(parse_d("SELECT * FROM t WHERE a ILIKE 'x%'", TextDialect::Mysql).is_err());
    }

    #[test]
    fn is_null_and_distinct_from() {
        assert!(matches!(parse("SELECT * FROM t WHERE a IS NULL"), Stmt::Select(_)));
        assert!(matches!(parse("SELECT * FROM t WHERE a IS NOT NULL"), Stmt::Select(_)));
        assert!(matches!(parse("SELECT * FROM t WHERE a IS DISTINCT FROM b"), Stmt::Select(_)));
    }

    #[test]
    fn values_standalone() {
        let stmt = parse("VALUES (1, 'a'), (2, 'b')");
        let Stmt::Select(q) = stmt else { panic!() };
        assert!(matches!(q.body, SetExpr::Values(_)));
    }

    #[test]
    fn copy_statement() {
        let stmt = parse_d("COPY onek FROM '/path/onek.data'", TextDialect::Postgres).unwrap();
        let Stmt::Copy { table, path, from } = stmt else { panic!() };
        assert_eq!(table, "onek");
        assert_eq!(path, "/path/onek.data");
        assert!(from);
        assert!(parse_d("COPY t FROM 'x'", TextDialect::Sqlite).is_err());
    }

    #[test]
    fn create_function_listing7() {
        let sql = "CREATE FUNCTION test_opclass_options_func(internal) RETURNS void AS 'regresslib', 'test_opclass_options_func' LANGUAGE C";
        let stmt = parse_d(sql, TextDialect::Postgres).unwrap();
        let Stmt::CreateFunction { name, language, library } = stmt else { panic!() };
        assert_eq!(name, "test_opclass_options_func");
        assert_eq!(language, "c");
        assert_eq!(library.as_deref(), Some("regresslib"));
    }

    #[test]
    fn numeric_literals() {
        let Stmt::Select(q) = parse("SELECT 9223372036854775807, 3.25, 1e3") else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let exprs: Vec<&Expr> = core
            .projection
            .iter()
            .map(|i| match i {
                SelectItem::Expr { expr, .. } => expr,
                _ => panic!(),
            })
            .collect();
        assert_eq!(*exprs[0], Expr::integer(i64::MAX));
        assert_eq!(*exprs[1], Expr::Literal(Literal::Float(3.25)));
        assert_eq!(*exprs[2], Expr::Literal(Literal::Float(1000.0)));
    }

    #[test]
    fn overflowing_integer_becomes_float() {
        let Stmt::Select(q) = parse("SELECT 99999999999999999999999999") else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr: Expr::Literal(Literal::Float(_)), .. } = &core.projection[0]
        else {
            panic!()
        };
    }

    #[test]
    fn parenthesised_query_statement() {
        assert!(matches!(parse("(((((select 1)))))"), Stmt::Select(_)));
    }

    #[test]
    fn limit_offset_forms() {
        let Stmt::Select(q) = parse("SELECT * FROM t LIMIT 10 OFFSET 5") else { panic!() };
        assert!(q.limit.is_some() && q.offset.is_some());
        let Stmt::Select(q) = parse_d("SELECT * FROM t LIMIT 5, 10", TextDialect::Mysql).unwrap()
        else {
            panic!()
        };
        assert_eq!(q.offset, Some(Expr::integer(5)));
        assert_eq!(q.limit, Some(Expr::integer(10)));
    }

    #[test]
    fn order_by_nulls() {
        let Stmt::Select(q) = parse("SELECT * FROM t ORDER BY a DESC NULLS FIRST, b NULLS LAST")
        else {
            panic!()
        };
        assert_eq!(q.order_by[0].nulls_first, Some(true));
        assert!(q.order_by[0].desc);
        assert_eq!(q.order_by[1].nulls_first, Some(false));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_d("SELECT 1 1", TextDialect::Generic).is_err());
        assert!(parse_d("SELECT 1; SELECT 2", TextDialect::Generic).is_err());
    }

    #[test]
    fn parse_script_multiple() {
        let stmts = parse_script(
            "CREATE TABLE a (b int); BEGIN; INSERT INTO a VALUES (1); UPDATE a SET b = b + 10; COMMIT;",
            TextDialect::Generic,
        )
        .unwrap();
        assert_eq!(stmts.len(), 5);
        assert_eq!(stmts[1], Stmt::Begin);
        assert_eq!(stmts[4], Stmt::Commit);
    }

    #[test]
    fn misspelled_verb_fails() {
        let err = parse_d("SELEC 1", TextDialect::Generic).unwrap_err();
        assert!(err.message.contains("SELEC"), "message: {}", err.message);
    }

    #[test]
    fn interval_literal() {
        let Stmt::Select(q) = parse("SELECT interval '1-2'") else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr: Expr::Interval(v), .. } = &core.projection[0] else {
            panic!()
        };
        assert_eq!(v, "1-2");
    }

    #[test]
    fn quoted_identifiers_unquoted() {
        let Stmt::Select(q) = parse(r#"SELECT "my col" FROM "my table""#) else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        let SelectItem::Expr { expr: Expr::Column { name, .. }, .. } = &core.projection[0] else {
            panic!()
        };
        assert_eq!(name, "my col");
        let TableRef::Named { name, .. } = &core.from[0] else { panic!() };
        assert_eq!(name, "my table");
    }

    #[test]
    fn coalesce_examples_from_paper() {
        assert!(matches!(parse("SELECT COALESCE(1, 1.0)"), Stmt::Select(_)));
        assert!(matches!(parse("SELECT COALESCE(1, 1)"), Stmt::Select(_)));
    }

    #[test]
    fn many_way_join_parses() {
        // The MySQL hang trigger joins 40+ tables; ensure deep FROM lists parse.
        let tables: Vec<String> = (0..45).map(|i| format!("t{i}")).collect();
        let sql = format!("SELECT * FROM {}", tables.join(", "));
        let Stmt::Select(q) = parse(&sql) else { panic!() };
        let SetExpr::Select(core) = &q.body else { panic!() };
        assert_eq!(core.from.len(), 45);
    }
}
