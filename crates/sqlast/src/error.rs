//! Parse errors.

/// A syntax error with enough context for the RQ4 failure classifiers to
/// attribute it (the classifiers look for "syntax error" / "near" shapes,
/// like real DBMS error strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message, DBMS style: `syntax error at or near "DIV"`.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Construct an error at a byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError { message: message.into(), offset }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_message() {
        let e = ParseError::new("syntax error at or near \"DIV\"", 3);
        assert_eq!(e.to_string(), "syntax error at or near \"DIV\"");
        assert_eq!(e.offset, 3);
    }
}
