//! SQL abstract syntax tree and dialect-aware recursive-descent parser.
//!
//! Where `squality-sqltext` answers "what kind of statement is this?"
//! tolerantly, this crate answers "what exactly does it say?" strictly: the
//! four engine simulators in `squality-engine` execute the [`ast::Stmt`]
//! values produced here, and a parse failure in a given dialect *is* the
//! syntax-error behaviour the paper's RQ4 classifies (e.g. MySQL's `DIV`
//! operator is a syntax error on PostgreSQL; `::` casts are syntax errors on
//! MySQL).
//!
//! # Example
//!
//! ```
//! use squality_sqlast::{parse_statement, ast::Stmt};
//! use squality_sqltext::TextDialect;
//!
//! let stmt = parse_statement("SELECT a, b FROM t1 WHERE c > a", TextDialect::Sqlite).unwrap();
//! assert!(matches!(stmt, Stmt::Select(_)));
//! ```

pub mod ast;
pub mod error;
pub mod parser;
pub mod print;
pub mod translate;

pub use error::ParseError;
pub use parser::{parse_script, parse_statement, Parser};
pub use print::print_statement;
pub use translate::{
    translate_sql, translate_statement, TranslationCache, TranslationCounts, TranslationRule,
    TranslationStats,
};
