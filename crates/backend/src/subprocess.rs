//! A [`Connector`] that drives an out-of-process backend worker.
//!
//! The worker (`squality-backend-worker`) hosts the engine in its own
//! process and speaks the length-prefixed protocol in
//! [`crate::protocol`] over stdin/stdout. The parent side enforces a
//! per-statement deadline (a dedicated reader thread feeds a channel the
//! parent waits on with a timeout) and a bounded restart-with-backoff
//! policy: when the worker crashes, hangs past its deadline, or breaks
//! the protocol, the child is killed and respawned, the provisioned
//! environment (data files, extensions) is replayed, and the fault is
//! surfaced as a *recovered* [`TransportError`] — a classified failure,
//! not a harness abort. Once a file exhausts its restart budget the
//! fault surfaces unrecovered, which stops the file exactly like an
//! engine crash; the budget refills on [`Connector::reset`] (a new
//! file).
//!
//! Restarting mid-file loses the database state the file had built, so
//! records after a recovered fault can fail for follow-on reasons
//! (missing tables). That mirrors what a real DBMS crash does to a test
//! session and is exactly what the failure taxonomy should see.

use crate::protocol::{
    encode_ext_request, encode_file_request, parse_response, read_frame, write_frame, Response,
    PROTO_VERSION,
};
use squality_engine::{ClientKind, EngineDialect, FaultProfile, QueryResult, Value};
use squality_runner::{
    client_result_error, engine_info, engine_token, Connector, ConnectorError, ConnectorFactory,
    ConnectorInfo, TransportError, TransportErrorKind,
};
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Default per-statement deadline.
pub const DEFAULT_DEADLINE: Duration = Duration::from_millis(2_000);

/// Default per-file restart budget.
pub const DEFAULT_MAX_RESTARTS: u32 = 3;

/// Fault counters aggregated across every connection a factory mints.
/// Shared (`Arc`) between the factory and its connections so a study can
/// report a backend-fault breakdown after the run.
#[derive(Debug, Default)]
pub struct BackendStats {
    /// Successful worker (re)spawns after a fault.
    pub restarts: AtomicU64,
    /// Worker crashes observed (process exit / closed pipe).
    pub crashes: AtomicU64,
    /// Statements killed at the deadline.
    pub timeouts: AtomicU64,
    /// Protocol violations (malformed frames / responses).
    pub protocol_errors: AtomicU64,
    /// Worker processes spawned in total (initial connects + restarts).
    pub spawns: AtomicU64,
}

impl BackendStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> BackendFaultBreakdown {
        BackendFaultBreakdown {
            restarts: self.restarts.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            spawns: self.spawns.load(Ordering::Relaxed),
        }
    }
}

/// A plain copy of [`BackendStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendFaultBreakdown {
    pub restarts: u64,
    pub crashes: u64,
    pub timeouts: u64,
    pub protocol_errors: u64,
    pub spawns: u64,
}

impl BackendFaultBreakdown {
    /// Total transport faults of any kind.
    pub fn faults(&self) -> u64 {
        self.crashes + self.timeouts + self.protocol_errors
    }

    /// Accumulate another breakdown (e.g. across a study's cells).
    pub fn merge(&mut self, other: &BackendFaultBreakdown) {
        self.restarts += other.restarts;
        self.crashes += other.crashes;
        self.timeouts += other.timeouts;
        self.protocol_errors += other.protocol_errors;
        self.spawns += other.spawns;
    }
}

/// Locate the worker binary: the `SQUALITY_BACKEND_WORKER` environment
/// variable wins; otherwise look next to the current executable and in
/// its parent directory (`target/<profile>/deps/x` → `target/<profile>`,
/// where cargo places workspace binaries).
pub fn discover_worker_bin() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("SQUALITY_BACKEND_WORKER") {
        if !path.is_empty() {
            return Some(PathBuf::from(path));
        }
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("squality-backend-worker{}", std::env::consts::EXE_SUFFIX);
    let dir = exe.parent()?;
    [dir.join(&name), dir.parent()?.join(&name)].into_iter().find(|c| c.is_file())
}

/// Shared configuration for a subprocess connection.
#[derive(Debug, Clone)]
struct SubprocessConfig {
    bin: PathBuf,
    dialect: EngineDialect,
    client: ClientKind,
    faults: FaultProfile,
    deadline: Duration,
    max_restarts: u32,
    files: Vec<(String, Vec<String>)>,
    extensions: Vec<String>,
    env: Vec<(String, String)>,
}

/// Mints [`SubprocessConnector`]s: one worker process per connection.
#[derive(Debug)]
pub struct SubprocessConnectorFactory {
    config: SubprocessConfig,
    stats: Arc<BackendStats>,
}

impl SubprocessConnectorFactory {
    /// Factory for `dialect` × `client` worker processes run from `bin`.
    pub fn new(
        bin: impl Into<PathBuf>,
        dialect: EngineDialect,
        client: ClientKind,
    ) -> SubprocessConnectorFactory {
        SubprocessConnectorFactory {
            config: SubprocessConfig {
                bin: bin.into(),
                dialect,
                client,
                faults: FaultProfile::default(),
                deadline: DEFAULT_DEADLINE,
                max_restarts: DEFAULT_MAX_RESTARTS,
                files: Vec::new(),
                extensions: Vec::new(),
                env: Vec::new(),
            },
            stats: Arc::new(BackendStats::default()),
        }
    }

    /// Use an explicit engine fault profile.
    pub fn with_faults(mut self, faults: FaultProfile) -> Self {
        self.config.faults = faults;
        self
    }

    /// Per-statement deadline (default [`DEFAULT_DEADLINE`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Per-file restart budget (default [`DEFAULT_MAX_RESTARTS`]).
    pub fn max_restarts(mut self, max_restarts: u32) -> Self {
        self.config.max_restarts = max_restarts;
        self
    }

    /// Every minted connection sees this data file (survives resets).
    pub fn provide_file(mut self, path: &str, lines: Vec<String>) -> Self {
        self.config.files.push((path.to_string(), lines));
        self
    }

    /// Every minted connection has this extension loaded.
    pub fn provide_extension(mut self, name: &str) -> Self {
        self.config.extensions.push(name.to_string());
        self
    }

    /// Pass an environment variable to every worker process — the seam
    /// the fault-injection tests use (`SQUALITY_CRASH_AFTER` etc.)
    /// without touching the harness's own process environment.
    pub fn env(mut self, key: &str, value: &str) -> Self {
        self.config.env.push((key.to_string(), value.to_string()));
        self
    }

    /// The shared fault counters across every minted connection.
    pub fn stats(&self) -> Arc<BackendStats> {
        Arc::clone(&self.stats)
    }
}

impl ConnectorFactory for SubprocessConnectorFactory {
    type Conn = SubprocessConnector;

    fn connect(&self) -> Result<SubprocessConnector, ConnectorError> {
        let mut conn = SubprocessConnector {
            config: self.config.clone(),
            worker: None,
            restarts_this_file: 0,
            stats: Arc::clone(&self.stats),
        };
        conn.respawn().map_err(|message| {
            ConnectorError::Transport(TransportError::new(TransportErrorKind::Connect, message))
        })?;
        Ok(conn)
    }

    /// Static metadata — no probe process is spawned, and no pid is
    /// reported, so suite-level metadata is deterministic across runs.
    fn info(&self) -> ConnectorInfo {
        ConnectorInfo {
            backend_version: Some(format!("worker/{PROTO_VERSION}")),
            ..engine_info(self.config.dialect, self.config.client).subprocess()
        }
    }
}

/// A live worker process with its reader thread.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    /// Frames from the worker's stdout, fed by a dedicated reader thread
    /// — the channel is what makes `recv_timeout` deadlines possible.
    frames: mpsc::Receiver<std::io::Result<Vec<u8>>>,
    pid: u32,
}

impl Worker {
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What went wrong on the wire (pre-recovery).
enum Fault {
    Crash(String),
    Timeout(String),
    Protocol(String),
}

impl Fault {
    fn kind(&self) -> TransportErrorKind {
        match self {
            Fault::Crash(_) => TransportErrorKind::Crash,
            Fault::Timeout(_) => TransportErrorKind::Timeout,
            Fault::Protocol(_) => TransportErrorKind::Protocol,
        }
    }

    fn message(self) -> String {
        match self {
            Fault::Crash(m) | Fault::Timeout(m) | Fault::Protocol(m) => m,
        }
    }
}

impl std::fmt::Debug for SubprocessConnector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubprocessConnector")
            .field("pid", &self.backend_pid())
            .field("restarts_this_file", &self.restarts_this_file)
            .finish_non_exhaustive()
    }
}

/// A connection to one backend worker process.
pub struct SubprocessConnector {
    config: SubprocessConfig,
    worker: Option<Worker>,
    /// Restarts consumed since the last reset (= since the file started;
    /// the scheduler resets before every file).
    restarts_this_file: u32,
    stats: Arc<BackendStats>,
}

impl SubprocessConnector {
    /// The worker process id, when the worker is alive.
    pub fn backend_pid(&self) -> Option<u32> {
        self.worker.as_ref().map(|w| w.pid)
    }

    /// Restarts consumed since the last reset.
    pub fn restarts_this_file(&self) -> u32 {
        self.restarts_this_file
    }

    /// Register a data file on this connection, surviving resets and
    /// worker restarts (mirrors `EngineConnector::provide_file`). A dead
    /// worker is not an error here — the file is recorded in the replay
    /// mirror and reaches the next worker on respawn.
    pub fn provide_file(&mut self, path: &str, lines: Vec<String>) {
        if let Some(worker) = self.worker.as_mut() {
            let _ =
                Self::roundtrip(worker, self.config.deadline, &encode_file_request(path, &lines));
        }
        self.config.files.push((path.to_string(), lines));
    }

    /// Register an available extension, surviving resets and restarts.
    pub fn provide_extension(&mut self, name: &str) {
        if let Some(worker) = self.worker.as_mut() {
            let _ = Self::roundtrip(worker, self.config.deadline, &encode_ext_request(name));
        }
        self.config.extensions.push(name.to_string());
    }

    /// Spawn a fresh worker, handshake, and replay the provisioned
    /// environment. On success the previous worker (if any) is already
    /// gone. Errors are returned as human-readable messages.
    fn respawn(&mut self) -> Result<(), String> {
        if let Some(worker) = self.worker.take() {
            worker.kill();
        }
        let faults: String = squality_engine::FaultId::ALL
            .iter()
            .map(|id| if self.config.faults.is_enabled(*id) { '1' } else { '0' })
            .collect();
        let mut command = Command::new(&self.config.bin);
        command
            .arg(engine_token(self.config.dialect))
            .arg(match self.config.client {
                ClientKind::Cli => "cli",
                ClientKind::Connector => "connector",
            })
            .arg(&faults)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (key, value) in &self.config.env {
            command.env(key, value);
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", self.config.bin.display()))?;
        self.stats.spawns.fetch_add(1, Ordering::Relaxed);
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, frames) = mpsc::channel();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            loop {
                match read_frame(&mut reader) {
                    Ok(Some(payload)) => {
                        if tx.send(Ok(payload)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        let pid = child.id();
        let mut worker = Worker { child, stdin, frames, pid };
        // Handshake: proves the binary speaks our protocol version before
        // any statement reaches it.
        let response =
            Self::roundtrip(&mut worker, self.config.deadline, b"HELLO").map_err(Fault::message)?;
        match parse_response(&response) {
            Ok(Response::Hello { proto, pid: _ }) if proto == PROTO_VERSION => {}
            Ok(Response::Hello { proto, .. }) => {
                worker.kill();
                return Err(format!(
                    "protocol version mismatch: worker speaks {proto}, harness {PROTO_VERSION}"
                ));
            }
            other => {
                worker.kill();
                return Err(format!("bad handshake: {other:?}"));
            }
        }
        for (path, lines) in &self.config.files {
            let response = Self::roundtrip(
                &mut worker,
                self.config.deadline,
                &encode_file_request(path, lines),
            )
            .map_err(Fault::message)?;
            if parse_response(&response) != Ok(Response::Ok) {
                worker.kill();
                return Err(format!("file provisioning rejected for {path}"));
            }
        }
        for ext in &self.config.extensions {
            let response =
                Self::roundtrip(&mut worker, self.config.deadline, &encode_ext_request(ext))
                    .map_err(Fault::message)?;
            if parse_response(&response) != Ok(Response::Ok) {
                worker.kill();
                return Err(format!("extension provisioning rejected for {ext}"));
            }
        }
        self.worker = Some(worker);
        Ok(())
    }

    /// One request/response exchange against a specific worker.
    fn roundtrip(
        worker: &mut Worker,
        deadline: Duration,
        payload: &[u8],
    ) -> Result<Vec<u8>, Fault> {
        if let Err(e) = write_frame(&mut worker.stdin, payload) {
            return Err(Fault::Crash(format!("backend stdin closed: {e}")));
        }
        let _ = worker.stdin.flush();
        match worker.frames.recv_timeout(deadline) {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(e)) => Err(Fault::Protocol(format!("malformed frame from backend: {e}"))),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(Fault::Timeout(format!(
                "statement exceeded the {}ms deadline",
                deadline.as_millis()
            ))),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let status = worker
                    .child
                    .wait()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|_| "unknown status".to_string());
                Err(Fault::Crash(format!("backend process died ({status})")))
            }
        }
    }

    /// Kill the worker, count the fault, and try to restart within the
    /// per-file budget. Returns the fault as a [`TransportError`] whose
    /// `recovered` flag says whether a fresh worker is ready.
    fn handle_fault(&mut self, fault: Fault) -> TransportError {
        let kind = fault.kind();
        let counter = match kind {
            TransportErrorKind::Timeout => &self.stats.timeouts,
            TransportErrorKind::Protocol => &self.stats.protocol_errors,
            _ => &self.stats.crashes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(worker) = self.worker.take() {
            worker.kill();
        }
        let mut message = fault.message();
        let mut recovered = false;
        while self.restarts_this_file < self.config.max_restarts {
            self.restarts_this_file += 1;
            // Small exponential backoff: 5ms, 10ms, 20ms, ... capped.
            let backoff = 5u64 << (self.restarts_this_file - 1).min(4);
            std::thread::sleep(Duration::from_millis(backoff));
            match self.respawn() {
                Ok(()) => {
                    self.stats.restarts.fetch_add(1, Ordering::Relaxed);
                    recovered = true;
                    break;
                }
                Err(e) => message = format!("{message}; restart failed: {e}"),
            }
        }
        if !recovered {
            message =
                format!("{message} (restart budget of {} exhausted)", self.config.max_restarts);
        }
        TransportError { kind, message, recovered }
    }
}

impl Connector for SubprocessConnector {
    fn engine_name(&self) -> &'static str {
        engine_token(self.config.dialect)
    }

    fn info(&self) -> ConnectorInfo {
        ConnectorInfo {
            backend_pid: self.backend_pid(),
            backend_version: Some(format!("worker/{PROTO_VERSION}")),
            ..engine_info(self.config.dialect, self.config.client).subprocess()
        }
    }

    fn execute(&mut self, sql: &str) -> Result<QueryResult, ConnectorError> {
        if self.worker.is_none() {
            // A previous file exhausted its budget, or reset's respawn
            // failed; try once more before declaring the backend gone.
            if let Err(message) = self.respawn() {
                return Err(ConnectorError::Transport(TransportError::new(
                    TransportErrorKind::Connect,
                    message,
                )));
            }
        }
        let mut payload = b"EXEC ".to_vec();
        payload.extend_from_slice(sql.as_bytes());
        let worker = self.worker.as_mut().expect("respawned above");
        let response = match Self::roundtrip(worker, self.config.deadline, &payload) {
            Ok(response) => response,
            Err(fault) => return Err(ConnectorError::Transport(self.handle_fault(fault))),
        };
        match parse_response(&response) {
            Ok(Response::Result(result)) => {
                // Client-level behaviour stays on this side of the process
                // boundary, like rendering: the worker ships raw engine
                // results, the parent applies the client simulation.
                match client_result_error(self.config.client, self.config.dialect, &result) {
                    Some(error) => Err(ConnectorError::Engine(error)),
                    None => Ok(result),
                }
            }
            Ok(Response::Error(error)) => Err(ConnectorError::Engine(error)),
            Ok(other) => {
                let fault = Fault::Protocol(format!("unexpected EXEC response: {other:?}"));
                Err(ConnectorError::Transport(self.handle_fault(fault)))
            }
            Err(e) => {
                let fault = Fault::Protocol(format!("undecodable EXEC response: {e}"));
                Err(ConnectorError::Transport(self.handle_fault(fault)))
            }
        }
    }

    fn render(&self, v: &Value) -> String {
        // Rendering is parent-side: the worker ships typed values with
        // exact bit patterns, the parent prints them the way this
        // dialect × client pair would.
        squality_engine::client::render_slt_value(v, self.config.dialect, self.config.client)
    }

    fn reset(&mut self) {
        // A new file: the restart budget refills.
        self.restarts_this_file = 0;
        if let Some(worker) = self.worker.as_mut() {
            match Self::roundtrip(worker, self.config.deadline, b"RESET") {
                Ok(response) if parse_response(&response) == Ok(Response::Ok) => return,
                _ => {}
            }
        }
        // Dead or misbehaving worker: a fresh spawn IS a reset. A spawn
        // failure here is benign — the next execute retries and surfaces
        // it as a Connect fault.
        let _ = self.respawn();
    }

    fn has_extension(&self, name: &str) -> bool {
        // Answered from the parent-side mirror: the provisioned extension
        // list is part of the factory configuration, and `&self` permits
        // no wire round-trip.
        let name = name.to_lowercase();
        self.config.extensions.iter().any(|e| e.to_lowercase() == name)
    }
}

impl Drop for SubprocessConnector {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            worker.kill();
        }
    }
}
