//! The wire protocol between the harness and a backend worker process.
//!
//! Frames are length-prefixed: `<len>\n<payload>`, where `len` is the
//! payload's byte length in ASCII decimal. Length prefixing means payloads
//! need no escaping — SQL text, error messages, and blob bytes travel
//! verbatim.
//!
//! Requests (first space-separated token is the operation):
//!
//! * `HELLO` — handshake; the worker answers `HELLO <proto> <pid>`.
//! * `EXEC <sql>` — execute one statement; the worker answers
//!   `RES <result>` (see [`encode_result`]) or `ERR <kind> <len>:<msg>`.
//! * `RESET` — drop all database state, keep the provisioned environment
//!   (registered files/extensions); answered with `OK`.
//! * `FILE <len>:<path><n>:<line>*` — register a data file; `OK`.
//! * `EXT <len>:<name>` — register an available extension; `OK`.
//!
//! Result values are encoded exactly — floats ship as the hex of their
//! IEEE-754 bit pattern, so the parent renders byte-identically to an
//! in-process run. Rendering stays parent-side (the parent knows the
//! dialect and client kind); the worker only ever ships typed values.

use squality_engine::{EngineError, ErrorKind, QueryResult, Value};
use std::io::{BufRead, Write};

/// Protocol version, exchanged in the HELLO handshake. Bump on any wire
/// format change.
pub const PROTO_VERSION: u32 = 1;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    writeln!(w, "{}", payload.len())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF (the peer
/// closed the stream between frames); a malformed length line or a
/// truncated payload is an `InvalidData` error.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_line = String::new();
    if r.read_line(&mut len_line)? == 0 {
        return Ok(None);
    }
    let len: usize = len_line.trim_end_matches('\n').parse().map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed frame length {:?}", len_line.trim_end()),
        )
    })?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Stable wire name of an [`ErrorKind`].
pub fn error_kind_name(kind: ErrorKind) -> &'static str {
    match kind {
        ErrorKind::Syntax => "Syntax",
        ErrorKind::UnsupportedStatement => "UnsupportedStatement",
        ErrorKind::UnknownFunction => "UnknownFunction",
        ErrorKind::UnsupportedType => "UnsupportedType",
        ErrorKind::UnsupportedOperator => "UnsupportedOperator",
        ErrorKind::UnknownConfig => "UnknownConfig",
        ErrorKind::Catalog => "Catalog",
        ErrorKind::Constraint => "Constraint",
        ErrorKind::Conversion => "Conversion",
        ErrorKind::Arithmetic => "Arithmetic",
        ErrorKind::Transaction => "Transaction",
        ErrorKind::ExtensionMissing => "ExtensionMissing",
        ErrorKind::FileNotFound => "FileNotFound",
        ErrorKind::Fatal => "Fatal",
        ErrorKind::Hang => "Hang",
        ErrorKind::NotImplemented => "NotImplemented",
    }
}

/// Parse a wire [`ErrorKind`] name.
pub fn parse_error_kind(name: &str) -> Result<ErrorKind, String> {
    Ok(match name {
        "Syntax" => ErrorKind::Syntax,
        "UnsupportedStatement" => ErrorKind::UnsupportedStatement,
        "UnknownFunction" => ErrorKind::UnknownFunction,
        "UnsupportedType" => ErrorKind::UnsupportedType,
        "UnsupportedOperator" => ErrorKind::UnsupportedOperator,
        "UnknownConfig" => ErrorKind::UnknownConfig,
        "Catalog" => ErrorKind::Catalog,
        "Constraint" => ErrorKind::Constraint,
        "Conversion" => ErrorKind::Conversion,
        "Arithmetic" => ErrorKind::Arithmetic,
        "Transaction" => ErrorKind::Transaction,
        "ExtensionMissing" => ErrorKind::ExtensionMissing,
        "FileNotFound" => ErrorKind::FileNotFound,
        "Fatal" => ErrorKind::Fatal,
        "Hang" => ErrorKind::Hang,
        "NotImplemented" => ErrorKind::NotImplemented,
        other => return Err(format!("unknown error kind {other:?}")),
    })
}

fn enc_count(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(n.to_string().as_bytes());
    out.push(b':');
}

fn enc_bytes(out: &mut Vec<u8>, tag: u8, bytes: &[u8]) {
    out.push(tag);
    enc_count(out, bytes.len());
    out.extend_from_slice(bytes);
}

fn enc_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(b'N'),
        Value::Integer(i) => {
            out.push(b'I');
            out.extend_from_slice(i.to_string().as_bytes());
            out.push(b';');
        }
        // Exact bit pattern: -0.0, NaN payloads, and subnormals all
        // round-trip, so parent-side rendering is byte-faithful.
        Value::Float(f) => {
            out.push(b'F');
            out.extend_from_slice(format!("{:016x}", f.to_bits()).as_bytes());
            out.push(b';');
        }
        Value::Boolean(b) => out.extend_from_slice(if *b { b"O1" } else { b"O0" }),
        Value::Text(t) => enc_bytes(out, b'T', t.as_bytes()),
        Value::Blob(b) => enc_bytes(out, b'B', b),
        Value::List(items) => {
            out.push(b'L');
            enc_count(out, items.len());
            for item in items {
                enc_value(out, item);
            }
        }
        Value::Struct(fields) => {
            out.push(b'S');
            enc_count(out, fields.len());
            for (name, value) in fields {
                enc_bytes(out, b'T', name.as_bytes());
                enc_value(out, value);
            }
        }
    }
}

/// A decode cursor over a response payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn byte(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("truncated payload")?;
        self.pos += 1;
        Ok(b)
    }

    /// Read ASCII decimal digits up to (and consuming) `stop`.
    fn number(&mut self, stop: u8) -> Result<usize, String> {
        let start = self.pos;
        while self.pos < self.buf.len() && self.buf[self.pos] != stop {
            self.pos += 1;
        }
        if self.pos >= self.buf.len() {
            return Err("unterminated number".to_string());
        }
        let text = std::str::from_utf8(&self.buf[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        self.pos += 1;
        text.parse().map_err(|_| format!("malformed number {text:?}"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|e| *e <= self.buf.len());
        let end = end.ok_or("truncated payload")?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn counted_bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.number(b':')?;
        self.take(len)
    }

    fn counted_str(&mut self) -> Result<&'a str, String> {
        std::str::from_utf8(self.counted_bytes()?).map_err(|_| "non-utf8 string".to_string())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.byte()? {
            b'N' => Ok(Value::Null),
            b'I' => {
                let start = self.pos;
                while self.pos < self.buf.len() && self.buf[self.pos] != b';' {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.buf[start..self.pos])
                    .map_err(|_| "non-utf8 integer".to_string())?;
                self.pos += 1; // the ';'
                Ok(Value::Integer(text.parse().map_err(|_| format!("bad integer {text:?}"))?))
            }
            b'F' => {
                let hex = std::str::from_utf8(self.take(16)?)
                    .map_err(|_| "non-utf8 float".to_string())?;
                let bits =
                    u64::from_str_radix(hex, 16).map_err(|_| format!("bad float bits {hex:?}"))?;
                if self.byte()? != b';' {
                    return Err("unterminated float".to_string());
                }
                Ok(Value::Float(f64::from_bits(bits)))
            }
            b'O' => Ok(Value::Boolean(self.byte()? == b'1')),
            b'T' => Ok(Value::text(self.counted_str()?)),
            b'B' => Ok(Value::Blob(self.counted_bytes()?.to_vec())),
            b'L' => {
                let n = self.number(b':')?;
                (0..n).map(|_| self.value()).collect::<Result<Vec<_>, _>>().map(Value::List)
            }
            b'S' => {
                let n = self.number(b':')?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    if self.byte()? != b'T' {
                        return Err("struct field name must be text".to_string());
                    }
                    let name = self.counted_str()?.to_string();
                    fields.push((name, self.value()?));
                }
                Ok(Value::Struct(fields))
            }
            other => Err(format!("unknown value tag {:?}", other as char)),
        }
    }
}

/// Encode a successful EXEC response: `RES C<n>:<col>* R<n>:<row>* A<n>;`.
pub fn encode_result(result: &QueryResult) -> Vec<u8> {
    let mut out = b"RES C".to_vec();
    // Rough pre-size: tags + a handful of bytes per cell.
    out.reserve(result.rows.len() * (result.columns.len() + 1) * 8);
    enc_count(&mut out, result.columns.len());
    for col in &result.columns {
        enc_bytes(&mut out, b'T', col.as_bytes());
    }
    out.push(b'R');
    enc_count(&mut out, result.rows.len());
    for row in &result.rows {
        enc_count(&mut out, row.len());
        for cell in row {
            enc_value(&mut out, cell);
        }
    }
    out.push(b'A');
    out.extend_from_slice(result.affected.to_string().as_bytes());
    out.push(b';');
    out
}

/// Encode an EXEC error response: `ERR <kind> <len>:<message>`.
pub fn encode_error(error: &EngineError) -> Vec<u8> {
    let mut out = b"ERR ".to_vec();
    out.extend_from_slice(error_kind_name(error.kind).as_bytes());
    out.push(b' ');
    enc_count(&mut out, error.message.len());
    out.extend_from_slice(error.message.as_bytes());
    out
}

/// A decoded worker response.
#[derive(Debug, PartialEq)]
pub enum Response {
    /// `OK` — RESET/FILE/EXT acknowledged.
    Ok,
    /// `HELLO <proto> <pid>`.
    Hello { proto: u32, pid: u32 },
    /// `RES ...` — a statement result.
    Result(QueryResult),
    /// `ERR ...` — the engine's error verdict on a statement.
    Error(EngineError),
}

/// Decode a worker response payload.
pub fn parse_response(payload: &[u8]) -> Result<Response, String> {
    if payload == b"OK" {
        return Ok(Response::Ok);
    }
    if let Some(rest) = payload.strip_prefix(b"HELLO ") {
        let text = std::str::from_utf8(rest).map_err(|_| "non-utf8 hello".to_string())?;
        let mut parts = text.split(' ');
        let proto = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("malformed hello {text:?}"))?;
        let pid = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("malformed hello {text:?}"))?;
        return Ok(Response::Hello { proto, pid });
    }
    if let Some(rest) = payload.strip_prefix(b"RES ") {
        let mut cur = Cursor { buf: rest, pos: 0 };
        if cur.byte()? != b'C' {
            return Err("result must start with a column count".to_string());
        }
        let ncols = cur.number(b':')?;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            if cur.byte()? != b'T' {
                return Err("column name must be text".to_string());
            }
            columns.push(cur.counted_str()?.to_string());
        }
        if cur.byte()? != b'R' {
            return Err("missing row section".to_string());
        }
        let nrows = cur.number(b':')?;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let ncells = cur.number(b':')?;
            let mut row = Vec::with_capacity(ncells);
            for _ in 0..ncells {
                row.push(cur.value()?);
            }
            rows.push(row);
        }
        if cur.byte()? != b'A' {
            return Err("missing affected count".to_string());
        }
        let affected = cur.number(b';')?;
        if cur.pos != rest.len() {
            return Err("trailing bytes after result".to_string());
        }
        return Ok(Response::Result(QueryResult { columns, rows, affected }));
    }
    if let Some(rest) = payload.strip_prefix(b"ERR ") {
        let mut cur = Cursor { buf: rest, pos: 0 };
        let start = cur.pos;
        while cur.pos < rest.len() && rest[cur.pos] != b' ' {
            cur.pos += 1;
        }
        let kind = std::str::from_utf8(&rest[start..cur.pos])
            .map_err(|_| "non-utf8 error kind".to_string())
            .and_then(parse_error_kind)?;
        cur.pos += 1; // the ' '
        let message = cur.counted_str()?.to_string();
        return Ok(Response::Error(EngineError::new(kind, message)));
    }
    Err(format!("unknown response ({} bytes)", payload.len()))
}

/// Encode a FILE provisioning request.
pub fn encode_file_request(path: &str, lines: &[String]) -> Vec<u8> {
    let mut out = b"FILE ".to_vec();
    enc_count(&mut out, path.len());
    out.extend_from_slice(path.as_bytes());
    enc_count(&mut out, lines.len());
    for line in lines {
        enc_count(&mut out, line.len());
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Decode a FILE request body (after the `FILE ` prefix).
pub fn parse_file_request(rest: &[u8]) -> Result<(String, Vec<String>), String> {
    let mut cur = Cursor { buf: rest, pos: 0 };
    let path = cur.counted_str()?.to_string();
    let n = cur.number(b':')?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        lines.push(cur.counted_str()?.to_string());
    }
    Ok((path, lines))
}

/// Encode an EXT provisioning request.
pub fn encode_ext_request(name: &str) -> Vec<u8> {
    let mut out = b"EXT ".to_vec();
    enc_count(&mut out, name.len());
    out.extend_from_slice(name.as_bytes());
    out
}

/// Decode an EXT request body (after the `EXT ` prefix).
pub fn parse_ext_request(rest: &[u8]) -> Result<String, String> {
    let mut cur = Cursor { buf: rest, pos: 0 };
    Ok(cur.counted_str()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(result: QueryResult) {
        let wire = encode_result(&result);
        match parse_response(&wire).unwrap() {
            Response::Result(back) => assert_eq!(back, result),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"EXEC SELECT 1").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "EXEC SELECT '\u{1F600}\nnewline'".as_bytes()).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"EXEC SELECT 1");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            "EXEC SELECT '\u{1F600}\nnewline'".as_bytes()
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_length_is_invalid_data() {
        let mut r = std::io::BufReader::new(&b"banana\nxx"[..]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn results_roundtrip_exactly() {
        roundtrip(QueryResult { columns: vec![], rows: vec![], affected: 3 });
        roundtrip(QueryResult {
            columns: vec!["a".into(), "weird \"col\"\n".into()],
            rows: vec![
                vec![Value::Integer(i64::MIN), Value::text("x:y;z")],
                vec![Value::Null, Value::Boolean(true)],
            ],
            affected: 0,
        });
    }

    #[test]
    fn float_bit_patterns_survive() {
        let specials = [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, -1e300];
        let rows = vec![specials.iter().map(|f| Value::Float(*f)).collect::<Vec<_>>()];
        let wire = encode_result(&QueryResult {
            columns: vec!["f".into(); specials.len()],
            rows,
            affected: 0,
        });
        let Response::Result(back) = parse_response(&wire).unwrap() else { panic!() };
        for (got, want) in back.rows[0].iter().zip(specials) {
            let Value::Float(f) = got else { panic!("{got:?}") };
            assert_eq!(f.to_bits(), want.to_bits(), "{want}");
        }
    }

    #[test]
    fn nested_values_roundtrip() {
        roundtrip(QueryResult {
            columns: vec!["v".into()],
            rows: vec![vec![Value::Struct(vec![
                ("k".into(), Value::List(vec![Value::Integer(1), Value::Null])),
                ("b".into(), Value::Blob(vec![0, 255, 10, 58])),
            ])]],
            affected: 0,
        });
    }

    #[test]
    fn errors_roundtrip_with_kind() {
        let err = EngineError::new(ErrorKind::Catalog, "no such table: t1\nhint: 'x'");
        match parse_response(&encode_error(&err)).unwrap() {
            Response::Error(back) => {
                assert_eq!(back.kind, ErrorKind::Catalog);
                assert_eq!(back.message, err.message);
            }
            other => panic!("{other:?}"),
        }
        for kind in [
            ErrorKind::Syntax,
            ErrorKind::Fatal,
            ErrorKind::Hang,
            ErrorKind::NotImplemented,
            ErrorKind::ExtensionMissing,
        ] {
            assert_eq!(parse_error_kind(error_kind_name(kind)).unwrap(), kind);
        }
        assert!(parse_error_kind("Banana").is_err());
    }

    #[test]
    fn provisioning_requests_roundtrip() {
        let wire = encode_file_request("/srv/data/onek.data", &["1|a".into(), "2|b".into()]);
        let rest = wire.strip_prefix(b"FILE ").unwrap();
        let (path, lines) = parse_file_request(rest).unwrap();
        assert_eq!(path, "/srv/data/onek.data");
        assert_eq!(lines, vec!["1|a".to_string(), "2|b".to_string()]);
        let wire = encode_ext_request("regresslib");
        assert_eq!(parse_ext_request(wire.strip_prefix(b"EXT ").unwrap()).unwrap(), "regresslib");
    }

    #[test]
    fn garbage_is_a_decode_error_not_a_panic() {
        for garbage in [
            &b"RES "[..],
            b"RES C1:",
            b"RES Cbanana:",
            b"RES C0:R1:1:F00;A0;",
            b"ERR Banana 2:xx",
            b"WHAT",
            b"RES C0:R0:A0;junk",
        ] {
            assert!(parse_response(garbage).is_err(), "{garbage:?}");
        }
    }
}
