//! Out-of-process backend layer.
//!
//! Everywhere else in the workspace the engine is a library call: fast,
//! deterministic, and fate-sharing — an engine bug that wedges or aborts
//! takes the harness with it. Real DBMS testing does not work that way,
//! and the paper's crash/hang taxonomy (Figure 4) only exists because
//! the systems under test live in their own processes. This crate adds
//! that boundary:
//!
//! * [`protocol`] — a tiny length-prefixed stdin/stdout wire format
//!   (`<len>\n<payload>` frames; typed values ship with exact bit
//!   patterns so parent-side rendering is byte-faithful),
//! * [`subprocess`] — [`subprocess::SubprocessConnector`], a
//!   [`squality_runner::Connector`] that drives a worker process with
//!   per-statement deadlines and bounded restart-with-backoff, and
//! * `squality-backend-worker` — the worker binary hosting the engine,
//!   with env-var fault hooks (`SQUALITY_CRASH_AFTER`,
//!   `SQUALITY_HANG_AFTER`) for crash-containment tests.
//!
//! A dead backend becomes a classified failure with a stable
//! [`squality_runner::FailureSignature`], never a harness abort. The
//! in-process path is untouched, so study output there stays
//! byte-identical.

pub mod protocol;
pub mod subprocess;

pub use subprocess::{
    discover_worker_bin, BackendFaultBreakdown, BackendStats, SubprocessConnector,
    SubprocessConnectorFactory, DEFAULT_DEADLINE, DEFAULT_MAX_RESTARTS,
};

use std::path::PathBuf;
use std::time::Duration;

/// Where a harness runs its engines — the builder axis added by the
/// backend layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// The engine as a library call in the harness process (the default;
    /// byte-identical to every prior release).
    #[default]
    InProcess,
    /// Each connection is a `squality-backend-worker` child process.
    Subprocess {
        /// Worker binary; `None` means [`discover_worker_bin`] at
        /// connect time.
        bin: Option<PathBuf>,
        /// Per-statement deadline before the worker is killed.
        deadline: Duration,
        /// Restarts allowed per test file before faults stop the file.
        max_restarts: u32,
    },
}

impl BackendSpec {
    /// A subprocess spec with default deadline and restart budget.
    pub fn subprocess() -> BackendSpec {
        BackendSpec::Subprocess {
            bin: None,
            deadline: DEFAULT_DEADLINE,
            max_restarts: DEFAULT_MAX_RESTARTS,
        }
    }

    /// Override the per-statement deadline (no-op for
    /// [`BackendSpec::InProcess`]). The stability arm uses short
    /// deadlines so hang-prone records rerun quickly.
    pub fn with_deadline(mut self, new_deadline: Duration) -> BackendSpec {
        if let BackendSpec::Subprocess { deadline, .. } = &mut self {
            *deadline = new_deadline;
        }
        self
    }

    /// Override the per-file restart budget (no-op for
    /// [`BackendSpec::InProcess`]).
    pub fn with_max_restarts(mut self, new_max: u32) -> BackendSpec {
        if let BackendSpec::Subprocess { max_restarts, .. } = &mut self {
            *max_restarts = new_max;
        }
        self
    }

    /// Stable tag for cache keys and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            BackendSpec::InProcess => "in-process",
            BackendSpec::Subprocess { .. } => "subprocess",
        }
    }
}
