//! The backend worker: hosts one engine in its own process and speaks
//! the `squality_backend::protocol` frame format on stdin/stdout.
//!
//! Invocation: `squality-backend-worker <dialect> <client> <fault-bits>`
//! where `<dialect>` is an engine token (`sqlite`, `postgresql`,
//! `duckdb`, `mysql`), `<client>` is `cli` or `connector`, and
//! `<fault-bits>` is one `1`/`0` per [`FaultId::ALL`] entry.
//!
//! Fault-injection hooks for crash-containment tests (the `EXEC` counter
//! resets on every `RESET` frame — the parent resets once per suite file,
//! so the schedule is *per file* and therefore independent of how files
//! are sharded across workers; a restarted worker also starts afresh):
//!
//! * `SQUALITY_CRASH_AFTER=N` — abort the process (exit 101) when the
//!   N-th `EXEC` arrives, before answering.
//! * `SQUALITY_HANG_AFTER=N` — stop answering forever on the N-th
//!   `EXEC` (the parent's deadline must fire).

use squality_backend::protocol::{
    encode_error, encode_result, parse_ext_request, parse_file_request, read_frame, write_frame,
    PROTO_VERSION,
};
use squality_engine::{ClientKind, Engine, EngineDialect, FaultId, FaultProfile};
use std::io::Write;

fn usage() -> ! {
    eprintln!("usage: squality-backend-worker <dialect> <client> <fault-bits>");
    std::process::exit(2);
}

fn parse_dialect(token: &str) -> Option<EngineDialect> {
    Some(match token {
        "sqlite" => EngineDialect::Sqlite,
        "postgresql" => EngineDialect::Postgres,
        "duckdb" => EngineDialect::Duckdb,
        "mysql" => EngineDialect::Mysql,
        _ => return None,
    })
}

fn parse_faults(bits: &str) -> Option<FaultProfile> {
    if bits.len() != FaultId::ALL.len() || !bits.bytes().all(|b| b == b'0' || b == b'1') {
        return None;
    }
    let mut faults = FaultProfile::all_fixed();
    for (id, bit) in FaultId::ALL.iter().zip(bits.bytes()) {
        faults.set(*id, bit == b'1');
    }
    Some(faults)
}

fn hook(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dialect, client, bits] = args.as_slice() else { usage() };
    let Some(dialect) = parse_dialect(dialect) else { usage() };
    let client = match client.as_str() {
        "cli" => ClientKind::Cli,
        "connector" => ClientKind::Connector,
        _ => usage(),
    };
    // The worker never renders — rendering is parent-side — but the
    // client kind is accepted so the argv fully describes the cell; a
    // future wire version could move rendering worker-side without an
    // argv change.
    let _ = client;
    let Some(faults) = parse_faults(bits) else { usage() };

    let crash_after = hook("SQUALITY_CRASH_AFTER");
    let hang_after = hook("SQUALITY_HANG_AFTER");
    let mut execs: u64 = 0;

    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let stdout = std::io::stdout();
    let mut writer = stdout.lock();

    let mut engine = Engine::with_faults(dialect, faults);
    // The provisioned environment, replayed into fresh engines on RESET.
    let mut files: Vec<(String, Vec<String>)> = Vec::new();
    let mut extensions: Vec<String> = Vec::new();

    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            // Clean EOF: the parent closed stdin (dropped the connector).
            Ok(None) => return,
            Err(_) => std::process::exit(3),
        };
        let response: Vec<u8> = if request == b"HELLO" {
            format!("HELLO {PROTO_VERSION} {}", std::process::id()).into_bytes()
        } else if let Some(sql) = request.strip_prefix(b"EXEC ") {
            execs += 1;
            if crash_after == Some(execs) {
                std::process::exit(101);
            }
            if hang_after == Some(execs) {
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            match std::str::from_utf8(sql) {
                // Engine errors — including simulated Fatal/Hang faults —
                // are ordinary ERR responses: the parent applies the same
                // expectation matching as an in-process run.
                Ok(sql) => match engine.execute(sql) {
                    Ok(result) => encode_result(&result),
                    Err(error) => encode_error(&error),
                },
                Err(_) => std::process::exit(3),
            }
        } else if request == b"RESET" {
            // Per-file fault schedules: the parent sends RESET before each
            // suite file, so restarting the EXEC count here makes
            // crash/hang injection deterministic at any worker count.
            execs = 0;
            engine = Engine::with_faults(dialect, faults);
            for (path, lines) in &files {
                engine.register_file(path, lines.clone());
            }
            for ext in &extensions {
                engine.register_extension(ext);
            }
            b"OK".to_vec()
        } else if let Some(rest) = request.strip_prefix(b"FILE ") {
            match parse_file_request(rest) {
                Ok((path, lines)) => {
                    engine.register_file(&path, lines.clone());
                    files.push((path, lines));
                    b"OK".to_vec()
                }
                Err(_) => std::process::exit(3),
            }
        } else if let Some(rest) = request.strip_prefix(b"EXT ") {
            match parse_ext_request(rest) {
                Ok(name) => {
                    engine.register_extension(&name);
                    extensions.push(name);
                    b"OK".to_vec()
                }
                Err(_) => std::process::exit(3),
            }
        } else {
            std::process::exit(3)
        };
        if write_frame(&mut writer, &response).is_err() {
            // Parent is gone; nothing left to serve.
            return;
        }
        let _ = writer.flush();
    }
}
