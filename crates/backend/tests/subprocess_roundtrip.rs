//! End-to-end tests against a real `squality-backend-worker` process.
//!
//! `cargo test` builds every workspace binary before running integration
//! tests, so the worker is discoverable next to the test executable's
//! parent directory (`target/<profile>`).

use squality_backend::{discover_worker_bin, SubprocessConnectorFactory};
use squality_engine::{ClientKind, EngineDialect, QueryResult, Value};
use squality_runner::{
    Connector, ConnectorError, ConnectorFactory, DependencyClass, EngineConnector, FailKind,
    FailureSignature, IncompatibilityClass, TransportErrorKind,
};
use std::time::Duration;

fn worker() -> std::path::PathBuf {
    discover_worker_bin().expect("worker binary next to the test executable")
}

fn factory() -> SubprocessConnectorFactory {
    SubprocessConnectorFactory::new(worker(), EngineDialect::Sqlite, ClientKind::Cli)
        .deadline(Duration::from_millis(2_000))
}

fn run(conn: &mut impl Connector, sql: &str) -> Result<QueryResult, ConnectorError> {
    conn.execute(sql)
}

#[test]
fn executes_statements_out_of_process() {
    let factory = factory();
    let mut conn = factory.connect().expect("spawn worker");
    assert!(conn.backend_pid().is_some());
    run(&mut conn, "CREATE TABLE t(a INTEGER, b TEXT)").unwrap();
    run(&mut conn, "INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
    let result = run(&mut conn, "SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(result.rows.len(), 2);
    assert_eq!(result.rows[0][0], Value::Integer(1));
    // Engine errors cross the wire as engine errors, not transport faults.
    match run(&mut conn, "SELECT * FROM missing") {
        Err(ConnectorError::Engine(e)) => assert!(e.message.contains("missing"), "{e:?}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn subprocess_results_match_in_process_results() {
    let factory = factory();
    let mut sub = factory.connect().unwrap();
    let mut inproc = EngineConnector::new(EngineDialect::Sqlite, ClientKind::Cli);
    let script = [
        "CREATE TABLE t(i INTEGER, f REAL, s TEXT)",
        "INSERT INTO t VALUES (1, 1.5, 'a'), (2, -0.0, NULL), (3, 0.1, 'b''q')",
        "SELECT i, f, s FROM t ORDER BY i",
        "SELECT avg(f), count(*) FROM t",
        "SELECT * FROM nowhere",
    ];
    for sql in script {
        let a = sub.execute(sql);
        let b = inproc.execute(sql);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra, rb, "{sql}");
                for (row_a, row_b) in ra.rows.iter().zip(&rb.rows) {
                    for (va, vb) in row_a.iter().zip(row_b) {
                        assert_eq!(sub.render(va), inproc.render(vb), "{sql}");
                    }
                }
            }
            (Err(ConnectorError::Engine(ea)), Err(ConnectorError::Engine(eb))) => {
                assert_eq!(ea.kind, eb.kind, "{sql}");
                assert_eq!(ea.message, eb.message, "{sql}");
            }
            (a, b) => panic!("{sql}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn reset_clears_tables_but_keeps_environment() {
    let factory = factory()
        .provide_file("/data/onek.data", vec!["1|one".into()])
        .provide_extension("regresslib");
    let mut conn = factory.connect().unwrap();
    run(&mut conn, "CREATE TABLE t(a INTEGER)").unwrap();
    conn.reset();
    assert!(run(&mut conn, "SELECT * FROM t").is_err(), "reset dropped the table");
    assert!(conn.has_extension("regresslib"));
    assert!(!conn.has_extension("nope"));
    // The same worker process served both sides of the reset.
    assert_eq!(factory.stats().snapshot().spawns, 1);
}

#[test]
fn crash_hook_is_a_recovered_crash_fault_with_stable_signature() {
    let factory = factory().env("SQUALITY_CRASH_AFTER", "2").max_restarts(3);
    let mut conn = factory.connect().unwrap();
    let pid_before = conn.backend_pid();
    run(&mut conn, "SELECT 1").unwrap();
    let fault = match run(&mut conn, "SELECT 2") {
        Err(ConnectorError::Transport(t)) => t,
        other => panic!("{other:?}"),
    };
    assert_eq!(fault.kind, TransportErrorKind::Crash);
    assert!(fault.recovered, "within the restart budget: {fault:?}");
    assert_eq!(conn.restarts_this_file(), 1);
    assert_ne!(conn.backend_pid(), pid_before, "a fresh worker took over");
    // The fresh worker answers (its own exec counter restarts at 1).
    run(&mut conn, "SELECT 3").unwrap();
    let stats = factory.stats().snapshot();
    assert_eq!((stats.crashes, stats.restarts, stats.spawns), (1, 1, 2));

    // The fault classifies like any failure — and its signature is stable
    // (exit statuses normalize away), so repeated backend deaths cluster
    // into one triage bucket.
    let kind = FailKind::BackendCrash;
    let sig =
        |detail: &str| FailureSignature::compute(kind, None, detail, &[], &[], Some("SELECT 2"));
    let sig_a = sig(&fault.to_string());
    let sig_b = sig("backend crash: backend process died (exit status: 999)");
    assert_eq!(sig_a, sig_b, "exit statuses must not leak into the signature");
    assert_eq!(sig_a.dependency, DependencyClass::Runner);
    assert_eq!(sig_a.incompatibility, IncompatibilityClass::Misc);
}

#[test]
fn hang_hook_is_a_recovered_timeout_fault() {
    let factory = factory().env("SQUALITY_HANG_AFTER", "1").deadline(Duration::from_millis(120));
    let mut conn = factory.connect().unwrap();
    let fault = match run(&mut conn, "SELECT 1") {
        Err(ConnectorError::Transport(t)) => t,
        other => panic!("{other:?}"),
    };
    assert_eq!(fault.kind, TransportErrorKind::Timeout);
    assert!(fault.recovered);
    assert!(fault.to_string().contains("deadline"), "{fault}");
    let stats = factory.stats().snapshot();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.restarts, 1);
}

#[test]
fn restart_budget_is_bounded_and_refills_per_file() {
    // Crash on every statement: the budget drains, then faults surface
    // unrecovered (which the runner maps to a file-stopping crash).
    let factory = factory().env("SQUALITY_CRASH_AFTER", "1").max_restarts(2);
    let mut conn = factory.connect().unwrap();
    let mut last = None;
    for _ in 0..3 {
        match run(&mut conn, "SELECT 1") {
            Err(ConnectorError::Transport(t)) => last = Some(t),
            other => panic!("{other:?}"),
        }
    }
    let last = last.unwrap();
    assert!(!last.recovered, "budget exhausted: {last:?}");
    assert!(last.to_string().contains("budget"), "{last}");
    assert_eq!(conn.restarts_this_file(), 2);
    // A new file refills the budget.
    conn.reset();
    assert_eq!(conn.restarts_this_file(), 0);
    match run(&mut conn, "SELECT 1") {
        Err(ConnectorError::Transport(t)) => assert!(t.recovered, "{t:?}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn connect_failure_is_a_transport_error_not_a_panic() {
    let factory = SubprocessConnectorFactory::new(
        "/nonexistent/squality-backend-worker",
        EngineDialect::Sqlite,
        ClientKind::Cli,
    );
    match factory.connect() {
        Err(ConnectorError::Transport(t)) => {
            assert_eq!(t.kind, TransportErrorKind::Connect);
            assert!(!t.recovered);
        }
        other => panic!("{other:?}"),
    }
    // Factory info stays static and deterministic even when no worker
    // can spawn (it never probes).
    let info = factory.info();
    assert_eq!(info.transport, "subprocess");
    assert_eq!(info.backend_pid, None);
}

#[test]
fn factory_info_is_static_and_connection_info_is_live() {
    let factory = factory();
    let info = factory.info();
    assert_eq!(info.engine, "sqlite");
    assert_eq!(info.transport, "subprocess");
    assert_eq!(info.backend_pid, None, "suite metadata must not depend on pids");
    assert_eq!(info.backend_version.as_deref(), Some("worker/1"));
    let conn = factory.connect().unwrap();
    let live = conn.info();
    assert_eq!(live.backend_pid, conn.backend_pid());
    assert_eq!(live.transport, "subprocess");
}
