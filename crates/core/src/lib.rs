//! SQuaLity core: the unified test suite and the full empirical study.
//!
//! This crate ties the substrates together into the paper's contribution:
//!
//! * [`transplant`] — run any donor suite on any host engine under
//!   controlled environment provisioning and client choice (§2),
//! * [`experiments`] — the complete study: donor validation (RQ3),
//!   the cross-DBMS matrix (RQ4), the coverage experiment, and the
//!   crash/hang findings (§6),
//! * [`report`] — regenerate every table and figure of the evaluation with
//!   the paper's published values alongside.
//!
//! # Example
//!
//! ```no_run
//! use squality_core::{run_study, StudyConfig, full_report};
//!
//! let study =
//!     run_study(StudyConfig { seed: 42, scale: 0.1, workers: 0, translated_arm: true });
//! println!("{}", full_report(&study));
//! ```

pub mod experiments;
pub mod report;
pub mod transplant;

pub use experiments::{
    dependency_breakdown, difficulty_summary, incompatibility_breakdown, run_study, BugFinding,
    CoverageRow, MatrixCell, Study, StudyConfig, EXECUTED_SUITES,
};
pub use report::{
    bug_report, figure1, figure2, figure3, figure4, full_report, table1, table2, table3, table4,
    table5, table6, table7, table8, translation_table,
};
pub use transplant::{
    run_suite_on, run_suite_sharded, run_suite_with_connector, sample_failures, FailureCase,
    Incident, Provision, RunConfig, SuiteRunSummary,
};
