//! SQuaLity core: the unified test suite and the full empirical study.
//!
//! This crate ties the substrates together into the paper's contribution:
//!
//! * [`harness`] — **the public entry point**: [`Harness::builder`]
//!   configures any suite × host run (client, faults, translation,
//!   workers, plan cache, observers — all defaulted) and executes it
//!   through the parallel scheduler with a typed, deterministic run-event
//!   stream,
//! * [`transplant`] — run configurations, summaries, and failure/skip
//!   accounting for donor-suite transplants (§2),
//! * [`experiments`] — the complete study: donor validation (RQ3),
//!   the cross-DBMS matrix (RQ4), the coverage experiment, and the
//!   crash/hang findings (§6),
//! * [`report`] — regenerate every table and figure of the evaluation with
//!   the paper's published values alongside,
//! * [`triage`] — signature clustering of every study failure into
//!   root-cause clusters, plus a parallel ddmin reducer that shrinks one
//!   exemplar per cluster into a minimal, verified repro file; with a
//!   [`BugStore`] attached, reduction is incremental against the
//!   persistent bug repository,
//! * [`replay`] — the regression-replay service: run the whole bug-store
//!   repro corpus as a first-class suite and report still-failing /
//!   fixed / regressed transitions per entry,
//! * [`stability`] — the flakiness arm: perturbed re-execution of every
//!   failure (reruns, worker count, execution strategy, plan cache,
//!   fault profile, seeded backend fault schedules) classifying each as
//!   stable, flaky, or perturbation-sensitive.
//!
//! Runs execute in-process by default; [`BackendSpec::Subprocess`] (via
//! [`HarnessBuilder::backend`](harness::HarnessBuilder::backend)) moves
//! each worker connection into a `squality-backend-worker` child process
//! with per-statement deadlines and bounded restart, so engine crashes
//! and hangs become classified failures instead of harness aborts.
//!
//! # Example
//!
//! Run one suite on one host through the builder:
//!
//! ```no_run
//! use squality_core::Harness;
//! use squality_corpus::generate_suite_scaled;
//! use squality_engine::EngineDialect;
//! use squality_formats::SuiteKind;
//!
//! let suite = generate_suite_scaled(SuiteKind::PgRegress, 42, 0.1);
//! let run = Harness::builder()
//!     .suite(&suite)
//!     .host(EngineDialect::Duckdb)
//!     .workers(0) // all cores; results are identical at any count
//!     .build()?
//!     .run();
//! println!("success rate: {:.1}%", run.summary.success_rate() * 100.0);
//! # Ok::<(), squality_core::HarnessError>(())
//! ```
//!
//! Or reproduce the whole evaluation:
//!
//! ```no_run
//! use squality_core::{full_report, run_study, StudyConfig};
//!
//! let config = StudyConfig::default().with_seed(42).with_scale(0.1);
//! let study = run_study(config);
//! println!("{}", full_report(&study));
//! ```

pub mod cache;
pub mod experiments;
pub mod harness;
pub mod replay;
pub mod report;
pub mod stability;
pub mod transplant;
pub mod triage;

pub use cache::{CacheStats, CachedFileRun, CellSpec, FileKey, ResultCache, SCHEMA_VERSION};
pub use experiments::{
    dependency_breakdown, difficulty_summary, incompatibility_breakdown, run_study,
    run_study_cached, run_study_with_observers, BugFinding, CoverageRow, MatrixCell, Study,
    StudyConfig, EXECUTED_SUITES,
};
pub use harness::{Harness, HarnessBuilder, HarnessError, Run};
pub use replay::{
    replay_store, replay_store_with_observers, ReplayConfig, ReplayEntry, ReplayReport,
    ReplayStatus,
};
pub use report::{
    bug_report, bug_store_table, figure1, figure2, figure3, figure4, full_report, replay_table,
    stability_table, table1, table2, table3, table4, table5, table6, table7, table8,
    translation_table, triage_table,
};
pub use squality_backend::{BackendFaultBreakdown, BackendSpec};
pub use squality_bugstore::{signature_key, BugArm, BugEntry, BugStore, BugStoreStats};
pub use stability::{
    annotate_study, stability_report, BugVerdict, ClusterVerdict, StabilityConfig, StabilityReport,
};
pub use transplant::{
    sample_failures, FailureCase, Incident, Provision, RunConfig, SkipBreakdown, SuiteRunSummary,
};
