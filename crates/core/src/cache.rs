//! Content-addressed incremental study cache.
//!
//! The study matrix re-executes every suite file in every cell on every
//! invocation, even when nothing changed — the dominant cost of repeated
//! studies. This module caches *per-file* execution results keyed by
//! content: a [`FileKey`] combines a hash of everything configuration-side
//! that can change an outcome (the **cell hash**, [`CellSpec`]) with the
//! canonical content hash of the one test file
//! ([`squality_formats::file_content_hash`]). Editing one donor file
//! therefore invalidates one file's entry, not the whole cell.
//!
//! On a hit the harness replays the cached [`FileResult`] through the
//! normal observer path, so summaries, report tables, JSONL event logs,
//! triage input, and coverage unions are **byte-identical** to a cold run
//! — the determinism contract (results independent of worker count and
//! timing excluded from canonical logs) is exactly what makes such replay
//! possible.
//!
//! The on-disk store is deliberately boring: one file per entry under a
//! schema-versioned directory, written atomically (unique temp file +
//! rename), with a header line double-checking the version. *Any* read
//! problem — missing file, bad header, truncated body, garbage — degrades
//! to a miss and a recompute, never an error: the cache can always be
//! deleted, and concurrent writers racing the same key both win (either
//! rename leaves a valid entry).

use crate::transplant::Provision;
use squality_corpus::DonorEnvironment;
use squality_engine::{ClientKind, Coverage, FaultId, FaultProfile};
use squality_formats::{ContentHasher, SuiteKind};
use squality_runner::sigcodec::{
    decode_signature, decode_translation_counts, encode_signature, encode_translation_counts,
    escape, unescape,
};
use squality_runner::{
    FailInfo, FileResult, NumericMode, Outcome, RecordResult, TranslationCounts, TranslationMode,
    TranslationRule,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// On-disk format version. Bumping it orphans (and ignores) every entry
/// written by older code: the version appears in both the directory name
/// and each entry's header line.
///
/// v2: the failure line delegates signature serialization to the shared
/// [`squality_runner::sigcodec`] codec (also used by the bug store).
pub const SCHEMA_VERSION: u32 = 2;

/// Process-wide counter making concurrent writers' temp file names unique.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Everything configuration-side that determines a cell's results — the
/// cell half of a [`FileKey`]. Fields that provably cannot change an
/// outcome are deliberately **absent**: worker count (determinism
/// contract), plan cache (parse memoisation is outcome-invisible),
/// observers (read-only), and the run label (suite-level events are
/// always emitted live, never replayed). See DESIGN.md "Incremental
/// study cache" for the full derivation table.
#[derive(Clone, Copy)]
pub struct CellSpec<'a> {
    /// Donor suite format.
    pub suite: SuiteKind,
    /// Execution backend fingerprint from
    /// [`squality_engine::execution_fingerprint`]: host dialect, executor
    /// strategy, and the engine semantics version.
    pub engine_fingerprint: &'a str,
    /// Client render layer.
    pub client: ClientKind,
    /// Provision level.
    pub provision: Provision,
    /// Numeric comparison mode.
    pub numeric: NumericMode,
    /// Verbatim vs translated execution (with dialect pair).
    pub translation: TranslationMode,
    /// Host fault schedule.
    pub faults: FaultProfile,
    /// The resolved donor environment, when the run has one.
    pub environment: Option<&'a DonorEnvironment>,
    /// Execution backend ([`squality_backend::BackendSpec::tag`]):
    /// in-process and subprocess runs must never share entries, even
    /// though the in-process path is today the only one that caches.
    pub backend: &'a str,
}

impl CellSpec<'_> {
    /// The configuration hash. Every field participates, with the
    /// environment narrowed to what the provision level actually applies
    /// (a `Bare` run ignores the environment entirely, so environment
    /// edits must not invalidate its entries).
    pub fn cell_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.write_str("squality-cell");
        h.write_tag(match self.suite {
            SuiteKind::Slt => 0,
            SuiteKind::Duckdb => 1,
            SuiteKind::PgRegress => 2,
            SuiteKind::MysqlTest => 3,
        });
        h.write_str(self.engine_fingerprint);
        h.write_tag(match self.client {
            ClientKind::Cli => 0,
            ClientKind::Connector => 1,
        });
        h.write_tag(match self.provision {
            Provision::Full => 0,
            Provision::CrossHost => 1,
            Provision::Bare => 2,
        });
        match self.numeric {
            NumericMode::Exact => h.write_tag(0),
            NumericMode::Tolerant(eps) => {
                h.write_tag(1);
                h.write_u64(eps.to_bits());
            }
        }
        match self.translation {
            TranslationMode::Verbatim => h.write_tag(0),
            TranslationMode::Translated { from, to } => {
                h.write_tag(1);
                h.write_tag(text_dialect_tag(from));
                h.write_tag(text_dialect_tag(to));
                // The rule-set fingerprint: adding, removing, or renaming
                // a translation rule invalidates every *translated* entry
                // (verbatim runs never consult the rules).
                for rule in TranslationRule::ALL {
                    h.write_str(rule.label());
                }
            }
        }
        for fault in FaultId::ALL {
            h.write_tag(self.faults.is_enabled(fault) as u8);
        }
        h.write_str(self.backend);
        match (self.environment, self.provision) {
            (None, _) | (_, Provision::Bare) => h.write_tag(0),
            (Some(env), level) => {
                h.write_tag(1);
                h.write_usize(env.data_files.len());
                for (path, lines) in &env.data_files {
                    h.write_str(path);
                    h.write_usize(lines.len());
                    for line in lines {
                        h.write_str(line);
                    }
                }
                h.write_usize(env.setup_sql.len());
                for sql in &env.setup_sql {
                    h.write_str(sql);
                }
                // Extensions only load under Full provisioning.
                if level == Provision::Full {
                    h.write_usize(env.extensions.len());
                    for ext in &env.extensions {
                        h.write_str(ext);
                    }
                }
            }
        }
        h.finish()
    }
}

fn text_dialect_tag(d: squality_sqltext::TextDialect) -> u8 {
    use squality_sqltext::TextDialect;
    match d {
        TextDialect::Sqlite => 0,
        TextDialect::Postgres => 1,
        TextDialect::Duckdb => 2,
        TextDialect::Mysql => 3,
        TextDialect::Generic => 4,
    }
}

/// Address of one cached per-file result: cell configuration hash × file
/// content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileKey {
    /// [`CellSpec::cell_hash`] of the run configuration.
    pub cell: u64,
    /// [`squality_formats::file_content_hash`] of the test file.
    pub file: u64,
}

/// One file's cached execution: everything needed to replay its effects
/// without a connector — outcomes for summaries/events/triage, the
/// file's translation counter deltas, and the coverage it hit.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedFileRun {
    /// The per-record outcomes, byte-equal to what a live run produces.
    pub result: FileResult,
    /// Translation counters attributable to this file alone.
    pub translation: TranslationCounts,
    /// Coverage hit while provisioning + running this file (universe
    /// included), captured in a per-file window.
    pub coverage: Coverage,
}

/// Hit/miss counters of one cache over one run, snapshot via
/// [`ResultCache::stats`] — threaded to reports the same way
/// [`squality_runner::TranslationStats`] counters are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries that existed but failed validation (bad version, truncated,
    /// garbage) — a subset of `misses`.
    pub corrupt: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The content-addressed on-disk result store.
///
/// Cheap to construct; share one per run via [`ResultCache::shared`] and
/// [`crate::HarnessBuilder::result_cache`]. All methods take `&self` and
/// are thread-safe; lookups and stores from racing workers are safe
/// because writes are atomic renames of complete entries.
pub struct ResultCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
}

impl ResultCache {
    /// A cache rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> ResultCache {
        ResultCache {
            root: root.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// [`ResultCache::new`] wrapped for sharing across cells of a study.
    pub fn shared(root: impl Into<PathBuf>) -> Arc<ResultCache> {
        Arc::new(ResultCache::new(root))
    }

    /// The conventional cache location: `.squality-cache/` under the
    /// current directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from(".squality-cache")
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &FileKey) -> PathBuf {
        // Shard by the cell hash's top byte to keep directories small.
        self.root
            .join(format!("v{SCHEMA_VERSION}"))
            .join(format!("{:02x}", key.cell >> 56))
            .join(format!("{:016x}-{:016x}.entry", key.cell, key.file))
    }

    /// Fetch a cached run. Any failure — absent entry, version mismatch,
    /// truncation, garbage — is a miss, never an error.
    pub fn lookup(&self, key: &FileKey) -> Option<CachedFileRun> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&text) {
            Some(run) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist one run atomically: write a complete entry to a uniquely
    /// named temp file, then rename into place. Two workers racing the
    /// same key each rename a *valid* entry, so readers never observe a
    /// partial write. IO failures are swallowed — a cache that cannot
    /// write simply never hits.
    pub fn store(&self, key: &FileKey, run: &CachedFileRun) {
        let path = self.entry_path(key);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, encode_entry(run)).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &path).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Snapshot of this instance's lookup/store counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Every entry file currently on disk (all schema versions), sorted —
    /// introspection, disk accounting, and targeted eviction in benches.
    pub fn entry_paths(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "entry") {
                    out.push(path);
                }
            }
        }
        out.sort();
        out
    }

    /// `(entry count, total bytes)` on disk.
    pub fn disk_usage(&self) -> (usize, u64) {
        let paths = self.entry_paths();
        let bytes = paths.iter().filter_map(|p| std::fs::metadata(p).ok()).map(|m| m.len()).sum();
        (paths.len(), bytes)
    }

    /// Delete the entire cache directory.
    pub fn clear(&self) -> std::io::Result<()> {
        match std::fs::remove_dir_all(&self.root) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Record this instance's counters as the cache's "last run" stats,
    /// read back by [`ResultCache::last_run_stats`] (the
    /// `squality-tables cache stats` surface).
    pub fn persist_stats(&self) {
        let s = self.stats();
        if std::fs::create_dir_all(&self.root).is_ok() {
            let _ = std::fs::write(
                self.root.join("last-run-stats"),
                format!("{} {} {} {}\n", s.hits, s.misses, s.stores, s.corrupt),
            );
        }
    }

    /// The counters persisted by the most recent [`ResultCache::persist_stats`]
    /// under `root`, if any.
    pub fn last_run_stats(root: &Path) -> Option<CacheStats> {
        let text = std::fs::read_to_string(root.join("last-run-stats")).ok()?;
        let mut nums = text.split_whitespace().map(|n| n.parse::<u64>());
        let mut next = || nums.next()?.ok();
        Some(CacheStats { hits: next()?, misses: next()?, stores: next()?, corrupt: next()? })
    }
}

// --- entry codec -----------------------------------------------------------
//
// Hand-rolled line-based format, consistent with the repo's no-serde
// stance. One entry is:
//
//   squality-result-cache v<SCHEMA_VERSION>
//   F <file name>                      (escaped)
//   X <crashed> <hung>                 (0|1)
//   T a0,..,a6;s0,..,s6;<translated>;<passthrough>
//   R <line> <sql>                     (one per record; sql is `-` or `=text`)
//   <outcome line>                     (P | K | C | H | B)
//   B <n-exp> <n-act>\t<detail>\t<sig> (failure: counts, detail, signature)
//   VL <n>                             (n feature-point lines follow)
//   l <hit> <point>
//   VB <n>                             (n decision-point lines follow)
//   b <hit> <point>
//   END
//
// Every free-form string is escaped (`\\`, `\n`, `\r`, `\t`), so lines
// stay one-per-record and tab can separate the failure line's text
// fields. A missing END means a truncated write: the entry is rejected.
// Escaping and the failure line's signature payload come from the shared
// `squality_runner::sigcodec` codec, which the bug store also uses.

fn encode_entry(run: &CachedFileRun) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!("squality-result-cache v{SCHEMA_VERSION}\n"));
    out.push_str(&format!("F {}\n", escape(&run.result.file)));
    out.push_str(&format!("X {} {}\n", run.result.crashed as u8, run.result.hung as u8));
    out.push_str(&format!("T {}\n", encode_translation_counts(&run.translation)));
    for r in &run.result.results {
        match &r.sql {
            None => out.push_str(&format!("R {} -\n", r.line)),
            Some(sql) => out.push_str(&format!("R {} ={}\n", r.line, escape(sql))),
        }
        match &r.outcome {
            Outcome::Pass => out.push_str("P\n"),
            Outcome::Skipped(reason) => out.push_str(&format!("K {}\n", escape(reason))),
            Outcome::Crash(m) => out.push_str(&format!("C {}\n", escape(m))),
            Outcome::Hang(m) => out.push_str(&format!("H {}\n", escape(m))),
            Outcome::Fail(info) => {
                out.push_str(&format!(
                    "B {} {}\t{}\t{}\n",
                    info.expected.len(),
                    info.actual.len(),
                    escape(&info.detail),
                    encode_signature(&info.signature)
                ));
                for v in &info.expected {
                    out.push_str(&format!("E {}\n", escape(v)));
                }
                for v in &info.actual {
                    out.push_str(&format!("A {}\n", escape(v)));
                }
            }
        }
    }
    let lines: Vec<_> = run.coverage.line_entries().collect();
    out.push_str(&format!("VL {}\n", lines.len()));
    for (point, hit) in lines {
        out.push_str(&format!("l {} {}\n", hit as u8, escape(point)));
    }
    let branches: Vec<_> = run.coverage.branch_entries().collect();
    out.push_str(&format!("VB {}\n", branches.len()));
    for (point, hit) in branches {
        out.push_str(&format!("b {} {}\n", hit as u8, escape(point)));
    }
    out.push_str("END\n");
    out
}

fn decode_entry(text: &str) -> Option<CachedFileRun> {
    let mut lines = text.lines();
    if lines.next()? != format!("squality-result-cache v{SCHEMA_VERSION}") {
        return None;
    }
    let file = unescape(lines.next()?.strip_prefix("F ")?)?;
    let mut flags = lines.next()?.strip_prefix("X ")?.split(' ');
    let crashed = flags.next()? == "1";
    let hung = flags.next()? == "1";
    let translation = decode_translation_counts(lines.next()?.strip_prefix("T ")?)?;

    let mut results = Vec::new();
    let mut coverage = Coverage::new();
    let mut saw_end = false;
    while let Some(line) = lines.next() {
        if let Some(rest) = line.strip_prefix("R ") {
            let (line_no, sql) = rest.split_once(' ')?;
            let line_no: usize = line_no.parse().ok()?;
            let sql = match sql {
                "-" => None,
                s => Some(unescape(s.strip_prefix('=')?)?),
            };
            let outcome_line = lines.next()?;
            let outcome = if outcome_line == "P" {
                Outcome::Pass
            } else if let Some(reason) = outcome_line.strip_prefix("K ") {
                Outcome::Skipped(unescape(reason)?.into())
            } else if let Some(m) = outcome_line.strip_prefix("C ") {
                Outcome::Crash(unescape(m)?)
            } else if let Some(m) = outcome_line.strip_prefix("H ") {
                Outcome::Hang(unescape(m)?)
            } else if let Some(rest) = outcome_line.strip_prefix("B ") {
                let (head, rest) = rest.split_once('\t')?;
                let (detail, sig_line) = rest.split_once('\t')?;
                let detail = unescape(detail)?;
                let mut fields = head.split(' ');
                let n_expected: usize = fields.next()?.parse().ok()?;
                let n_actual: usize = fields.next()?.parse().ok()?;
                if fields.next().is_some() {
                    return None;
                }
                // Stability verdicts are never cached: the rerun arm
                // bypasses the result cache entirely (see `Harness::run`),
                // so a decoded signature must be pre-annotation.
                let signature = decode_signature(sig_line)?;
                if signature.stability.is_some() {
                    return None;
                }
                let mut take = |n: usize, prefix: &str| -> Option<Vec<String>> {
                    (0..n).map(|_| unescape(lines.next()?.strip_prefix(prefix)?)).collect()
                };
                let expected = take(n_expected, "E ")?;
                let actual = take(n_actual, "A ")?;
                Outcome::Fail(FailInfo {
                    kind: signature.kind,
                    error_kind: signature.error_kind,
                    detail,
                    expected,
                    actual,
                    signature,
                })
            } else {
                return None;
            };
            results.push(RecordResult { line: line_no, sql, outcome });
        } else if let Some(n) = line.strip_prefix("VL ") {
            let n: usize = n.parse().ok()?;
            for _ in 0..n {
                let (hit, point) = lines.next()?.strip_prefix("l ")?.split_once(' ')?;
                coverage.set_line(unescape(point)?, hit == "1");
            }
        } else if let Some(n) = line.strip_prefix("VB ") {
            let n: usize = n.parse().ok()?;
            for _ in 0..n {
                let (hit, point) = lines.next()?.strip_prefix("b ")?.split_once(' ')?;
                coverage.set_branch(unescape(point)?, hit == "1");
            }
        } else if line == "END" {
            saw_end = true;
            break;
        } else {
            return None;
        }
    }
    saw_end.then_some(CachedFileRun {
        result: FileResult { file, results, crashed, hung },
        translation,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use squality_engine::ErrorKind;
    use squality_runner::FailKind;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("squality-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    fn sample_run() -> CachedFileRun {
        let fail = FailInfo::new(
            FailKind::WrongResult,
            Some(ErrorKind::Conversion),
            "expected \"1\"\nsaw \"2\"\ttabbed",
            vec!["1".into(), "two words".into()],
            vec!["2".into()],
            Some("SELECT a / 4 FROM t"),
        );
        let mut coverage = Coverage::new();
        coverage.register_line("stmt:SELECT");
        coverage.hit_line("fn:count");
        coverage.register_branch("op:/:ok");
        coverage.hit_branch("op:+:ok");
        let mut translation = TranslationCounts::default();
        translation.applied[2] = 5;
        translation.skipped[0] = 1;
        translation.translated = 7;
        translation.passthrough = 3;
        CachedFileRun {
            result: FileResult {
                file: "weird name\twith\ntabs.test".into(),
                results: vec![
                    RecordResult { line: 1, sql: Some("SELECT 1".into()), outcome: Outcome::Pass },
                    RecordResult {
                        line: 4,
                        sql: None,
                        outcome: Outcome::Skipped("condition excludes sqlite".into()),
                    },
                    RecordResult {
                        line: 9,
                        sql: Some("bad\nsql".into()),
                        outcome: Outcome::Fail(fail),
                    },
                    RecordResult { line: 12, sql: None, outcome: Outcome::Crash("boom".into()) },
                    RecordResult { line: 15, sql: None, outcome: Outcome::Hang("spin".into()) },
                ],
                crashed: true,
                hung: true,
            },
            translation,
            coverage,
        }
    }

    #[test]
    fn codec_roundtrips_every_outcome_kind() {
        let run = sample_run();
        let decoded = decode_entry(&encode_entry(&run)).expect("roundtrip");
        assert_eq!(decoded.result, run.result);
        assert_eq!(decoded.translation, run.translation);
        assert_eq!(
            decoded.coverage.line_entries().collect::<Vec<_>>(),
            run.coverage.line_entries().collect::<Vec<_>>()
        );
        assert_eq!(
            decoded.coverage.branch_entries().collect::<Vec<_>>(),
            run.coverage.branch_entries().collect::<Vec<_>>()
        );
    }

    #[test]
    fn store_then_lookup_hits() {
        let cache = temp_cache("hit");
        let key = FileKey { cell: 0xabc, file: 0xdef };
        let run = sample_run();
        assert!(cache.lookup(&key).is_none());
        cache.store(&key, &run);
        let got = cache.lookup(&key).expect("stored entry hits");
        assert_eq!(got.result, run.result);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores, stats.corrupt), (1, 1, 1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        let (entries, bytes) = cache.disk_usage();
        assert_eq!(entries, 1);
        assert!(bytes > 0);
        cache.clear().unwrap();
        assert_eq!(cache.disk_usage().0, 0);
    }

    #[test]
    fn schema_version_mismatch_is_a_miss() {
        let cache = temp_cache("version");
        let key = FileKey { cell: 1, file: 2 };
        cache.store(&key, &sample_run());
        let path = cache.entry_paths().pop().expect("one entry");
        let old = std::fs::read_to_string(&path).unwrap();
        let bumped =
            old.replacen(&format!("v{SCHEMA_VERSION}"), &format!("v{}", SCHEMA_VERSION + 1), 1);
        std::fs::write(&path, bumped).unwrap();
        assert!(cache.lookup(&key).is_none(), "future-version entry must miss");
        assert_eq!(cache.stats().corrupt, 1);
        cache.clear().unwrap();
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let cache = temp_cache("truncated");
        let key = FileKey { cell: 3, file: 4 };
        cache.store(&key, &sample_run());
        let path = cache.entry_paths().pop().expect("one entry");
        let full = std::fs::read_to_string(&path).unwrap();
        // Drop the END terminator and a bit more — a torn write.
        let cut = full.len() - "END\n".len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        assert!(cache.lookup(&key).is_none(), "truncated entry must miss");
        assert_eq!(cache.stats().corrupt, 1);
        cache.clear().unwrap();
    }

    #[test]
    fn garbage_entry_is_a_miss() {
        let cache = temp_cache("garbage");
        let key = FileKey { cell: 5, file: 6 };
        cache.store(&key, &sample_run());
        let path = cache.entry_paths().pop().expect("one entry");
        std::fs::write(&path, "not an entry at all\n\0\0\0").unwrap();
        assert!(cache.lookup(&key).is_none(), "garbage entry must miss");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.corrupt), (1, 1));
        cache.clear().unwrap();
    }

    #[test]
    fn concurrent_writers_racing_one_key_leave_a_valid_entry() {
        let cache = std::sync::Arc::new(temp_cache("race"));
        let key = FileKey { cell: 7, file: 8 };
        let run = sample_run();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                let run = run.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        cache.store(&key, &run);
                    }
                });
            }
        });
        let got = cache.lookup(&key).expect("a racing store still leaves a valid entry");
        assert_eq!(got.result, run.result);
        // No temp litter: exactly the one entry file remains.
        assert_eq!(cache.disk_usage().0, 1);
        let dir = cache.entry_paths().pop().unwrap();
        let litter: Vec<_> = std::fs::read_dir(dir.parent().unwrap())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(litter.is_empty(), "temp files must not leak: {litter:?}");
        cache.clear().unwrap();
    }

    #[test]
    fn last_run_stats_roundtrip() {
        let cache = temp_cache("stats");
        cache.store(&FileKey { cell: 9, file: 1 }, &sample_run());
        let _ = cache.lookup(&FileKey { cell: 9, file: 1 });
        let _ = cache.lookup(&FileKey { cell: 9, file: 2 });
        cache.persist_stats();
        let stats = ResultCache::last_run_stats(cache.root()).expect("persisted stats");
        assert_eq!(stats, cache.stats());
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        cache.clear().unwrap();
    }

    #[test]
    fn cell_hash_tracks_configuration() {
        let env = DonorEnvironment::for_suite(SuiteKind::PgRegress);
        let base = CellSpec {
            suite: SuiteKind::PgRegress,
            engine_fingerprint: "SQLite/hash/v1",
            client: ClientKind::Connector,
            provision: Provision::CrossHost,
            numeric: NumericMode::Exact,
            translation: TranslationMode::Verbatim,
            faults: FaultProfile::default(),
            environment: Some(&env),
            backend: "in-process",
        };
        let h = base.cell_hash();
        assert_eq!(h, base.cell_hash(), "hash must be stable");
        assert_ne!(
            h,
            CellSpec { backend: "subprocess", ..base }.cell_hash(),
            "backend participates"
        );
        assert_ne!(
            h,
            CellSpec { engine_fingerprint: "SQLite/naive/v1", ..base }.cell_hash(),
            "exec strategy participates"
        );
        assert_ne!(
            h,
            CellSpec { client: ClientKind::Cli, ..base }.cell_hash(),
            "client participates"
        );
        assert_ne!(
            h,
            CellSpec { numeric: NumericMode::Tolerant(0.01), ..base }.cell_hash(),
            "numeric mode participates"
        );
        let mut edited = env.clone();
        edited.setup_sql.push("CREATE TABLE extra(x INTEGER)".to_string());
        assert_ne!(
            h,
            CellSpec { environment: Some(&edited), ..base }.cell_hash(),
            "setup SQL participates under CrossHost"
        );
        // Bare provisioning ignores the environment entirely.
        let bare = CellSpec { provision: Provision::Bare, ..base };
        let bare_edited =
            CellSpec { provision: Provision::Bare, environment: Some(&edited), ..base };
        assert_eq!(bare.cell_hash(), bare_edited.cell_hash());
        // Extensions only matter under Full provisioning.
        let mut more_ext = env.clone();
        more_ext.extensions.push("vector".to_string());
        let cross = CellSpec { environment: Some(&more_ext), ..base };
        assert_eq!(h, cross.cell_hash(), "extensions ignored under CrossHost");
        let full = CellSpec { provision: Provision::Full, ..base };
        let full_ext =
            CellSpec { provision: Provision::Full, environment: Some(&more_ext), ..base };
        assert_ne!(full.cell_hash(), full_ext.cell_hash(), "extensions matter under Full");
    }
}
