//! The unified public entry point: a builder for suite × host runs.
//!
//! PRs 1–3 each widened the free-function surface (`run_suite_on`,
//! `run_suite_sharded`, `run_suite_with_connector`) and its struct-literal
//! configs, breaking callers every time a knob landed. [`Harness`]
//! replaces that scatter with one builder — suite → host engine → client →
//! faults → translation → workers → plan cache, all defaulted — whose
//! [`Run`]s execute through the existing parallel scheduler and emit the
//! typed [`RunEvent`] stream to any number of
//! [`RunObserver`] sinks.
//!
//! The determinism contract carries over unchanged: summaries and the
//! event multiset are byte-identical at every worker count (timing fields
//! aside); see [`squality_runner::events`].

use crate::cache::{CachedFileRun, CellSpec, FileKey, ResultCache};
use crate::stability::StabilityConfig;
use crate::transplant::{summarize, Provision, RunConfig, SuiteRunSummary};
use squality_backend::{
    discover_worker_bin, BackendFaultBreakdown, BackendSpec, SubprocessConnector,
    SubprocessConnectorFactory,
};
use squality_corpus::{donor_dialect, DonorEnvironment, GeneratedSuite};
use squality_engine::{
    execution_fingerprint, ClientKind, Coverage, EngineDialect, ExecStrategy, FaultProfile,
    PlanCache,
};
use squality_formats::{file_content_hash, SuiteKind, TestFile};
use squality_runner::{
    emit_suite_finished, replay_file_events, Connector, EngineConnector, EngineConnectorFactory,
    FanoutObserver, FileRunRecord, NumericMode, RunEvent, RunObserver, Runner, RunnerOptions,
    TranslationCounts, TranslationMode,
};
use std::sync::{Arc, Mutex};

/// What a harness executes: a generated donor suite (with its recorded
/// environment) or a bare slice of parsed test files.
enum SuiteSource<'a> {
    Generated(&'a GeneratedSuite),
    Files { kind: SuiteKind, files: &'a [TestFile] },
}

impl SuiteSource<'_> {
    fn kind(&self) -> SuiteKind {
        match self {
            SuiteSource::Generated(gs) => gs.suite,
            SuiteSource::Files { kind, .. } => *kind,
        }
    }

    fn files(&self) -> &[TestFile] {
        match self {
            SuiteSource::Generated(gs) => &gs.files,
            SuiteSource::Files { files, .. } => files,
        }
    }
}

/// Why a [`HarnessBuilder`] could not produce a [`Harness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HarnessError {
    /// No suite was given: call [`HarnessBuilder::suite`] or
    /// [`HarnessBuilder::files`] before [`HarnessBuilder::build`].
    MissingSuite,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::MissingSuite => {
                write!(f, "no suite configured: call .suite(..) or .files(..) before .build()")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// Builder for a [`Harness`]. Every knob is defaulted; only the suite is
/// required. See [`Harness::builder`] for a complete example.
pub struct HarnessBuilder<'a> {
    source: Option<SuiteSource<'a>>,
    environment: Option<&'a DonorEnvironment>,
    host: Option<EngineDialect>,
    client: ClientKind,
    provision: Option<Provision>,
    numeric: NumericMode,
    faults: FaultProfile,
    translate: bool,
    workers: usize,
    backend: BackendSpec,
    backend_env: Vec<(String, String)>,
    exec_strategy: ExecStrategy,
    plan_cache: Option<Arc<PlanCache>>,
    result_cache: Option<Arc<ResultCache>>,
    stability: Option<StabilityConfig>,
    observers: Vec<&'a dyn RunObserver>,
    label: Option<String>,
}

impl<'a> HarnessBuilder<'a> {
    fn new() -> HarnessBuilder<'a> {
        HarnessBuilder {
            source: None,
            environment: None,
            host: None,
            client: ClientKind::Connector,
            provision: None,
            numeric: NumericMode::Exact,
            faults: FaultProfile::default(),
            translate: false,
            workers: 1,
            backend: BackendSpec::InProcess,
            backend_env: Vec::new(),
            exec_strategy: ExecStrategy::default(),
            plan_cache: None,
            result_cache: None,
            stability: None,
            observers: Vec::new(),
            label: None,
        }
    }

    /// The donor suite to execute, with its recorded environment
    /// (provisioned per [`HarnessBuilder::provision`]).
    pub fn suite(mut self, suite: &'a GeneratedSuite) -> Self {
        self.source = Some(SuiteSource::Generated(suite));
        self
    }

    /// Execute bare parsed test files of donor format `kind` instead of a
    /// generated suite. There is no environment to provision, so the run
    /// behaves like [`Provision::Bare`].
    pub fn files(mut self, kind: SuiteKind, files: &'a [TestFile]) -> Self {
        self.source = Some(SuiteSource::Files { kind, files });
        self
    }

    /// Provision runs from this donor environment instead of the suite's
    /// own. This is what lets a [`HarnessBuilder::files`] run — a triage
    /// reduction probe, a minimized repro re-execution — replay under the
    /// exact environment its cell observed. A generated suite defaults to
    /// its recorded environment; bare files default to none.
    pub fn environment(mut self, env: &'a DonorEnvironment) -> Self {
        self.environment = Some(env);
        self
    }

    /// Host engine the suite runs on. Default: the suite's own donor
    /// engine.
    pub fn host(mut self, host: EngineDialect) -> Self {
        self.host = Some(host);
        self
    }

    /// Client the results are rendered through. Default:
    /// [`ClientKind::Connector`] (the paper's unified runner).
    pub fn client(mut self, client: ClientKind) -> Self {
        self.client = client;
        self
    }

    /// How much of the donor environment the host receives. Default:
    /// [`Provision::CrossHost`] for a generated suite, [`Provision::Bare`]
    /// for bare files.
    pub fn provision(mut self, provision: Provision) -> Self {
        self.provision = Some(provision);
        self
    }

    /// Numeric comparison mode. Default: [`NumericMode::Exact`].
    pub fn numeric(mut self, numeric: NumericMode) -> Self {
        self.numeric = numeric;
        self
    }

    /// Fault profile of the host engine. Default: the paper-version
    /// profile (every studied bug present).
    pub fn faults(mut self, faults: FaultProfile) -> Self {
        self.faults = faults;
        self
    }

    /// Adapt each statement from the donor dialect to the host dialect
    /// before execution (the translated arm). Default: off — donor text
    /// runs verbatim, the paper's methodology. A same-dialect pair is the
    /// identity either way.
    pub fn translate(mut self, translate: bool) -> Self {
        self.translate = translate;
        self
    }

    /// Worker connections to shard files over (`0` = all cores, clamped
    /// to the file count). Default: 1. Purely a throughput knob: results
    /// and events are byte-identical at every count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Where host engines run. Default: [`BackendSpec::InProcess`] — the
    /// engine as a library call, byte-identical to every prior release.
    /// [`BackendSpec::Subprocess`] puts each worker connection behind a
    /// `squality-backend-worker` child process with per-statement
    /// deadlines and bounded restart: an engine crash or hang becomes a
    /// classified failure instead of taking the harness down.
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Set an environment variable on every spawned backend worker
    /// process (no effect in-process). Entries set here override any
    /// forwarded variable of the same name from the harness's own
    /// environment — this is how the stability arm injects *seeded*
    /// `SQUALITY_CRASH_AFTER`/`SQUALITY_HANG_AFTER` schedules without
    /// mutating (thread-unsafe) process-global state.
    pub fn backend_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.backend_env.push((key.into(), value.into()));
        self
    }

    /// Execution strategy of the host engine (the stability arm's
    /// naive-vs-hash perturbation axis). Default: [`ExecStrategy::Hash`].
    /// Participates in the result-cache cell key, so strategies never
    /// share cached results.
    pub fn exec_strategy(mut self, strategy: ExecStrategy) -> Self {
        self.exec_strategy = strategy;
        self
    }

    /// Re-execute every failing record under the stability arm's
    /// perturbation matrix after the run, annotating each failure's
    /// [`FailureSignature`](squality_runner::FailureSignature) with a
    /// [`Stability`](squality_runner::Stability) verdict. Stability runs
    /// bypass the result cache: verdicts must come from live perturbed
    /// re-execution, never replayed entries. Default: off.
    pub fn stability(mut self, config: StabilityConfig) -> Self {
        self.stability = Some(config);
        self
    }

    /// Share a statement-plan cache across this run's connections (and,
    /// by passing the same `Arc`, across runs). Default: none.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Use a content-addressed result cache: files whose content and run
    /// configuration match a cached entry are **not executed** — their
    /// recorded results are replayed through the observer path instead,
    /// byte-identical to a live run. Share one cache `Arc` across runs
    /// (and across studies) for cross-run reuse. Default: off.
    pub fn result_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.result_cache = Some(cache);
        self
    }

    /// Register an event sink. May be called repeatedly; observers
    /// receive every [`RunEvent`] in registration order.
    pub fn observer(mut self, observer: &'a dyn RunObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Human-readable label carried in `SuiteStarted`/`SuiteFinished`
    /// events. Default: `"<donor>→<host>"`, with a ` (translated)`
    /// suffix when translation is on.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Resolve defaults and produce the [`Harness`].
    pub fn build(self) -> Result<Harness<'a>, HarnessError> {
        let source = self.source.ok_or(HarnessError::MissingSuite)?;
        let host = self.host.unwrap_or_else(|| donor_dialect(source.kind()));
        let provision = self.provision.unwrap_or(match source {
            SuiteSource::Generated(_) => Provision::CrossHost,
            SuiteSource::Files { .. } => Provision::Bare,
        });
        let label = self.label.unwrap_or_else(|| {
            format!(
                "{}→{}{}",
                source.kind().donor_name(),
                host.name(),
                if self.translate { " (translated)" } else { "" }
            )
        });
        Ok(Harness {
            source,
            environment: self.environment,
            host,
            client: self.client,
            provision,
            numeric: self.numeric,
            faults: self.faults,
            translate: self.translate,
            workers: self.workers,
            backend: self.backend,
            backend_env: self.backend_env,
            exec_strategy: self.exec_strategy,
            plan_cache: self.plan_cache,
            result_cache: self.result_cache,
            stability: self.stability,
            observers: self.observers,
            label,
        })
    }
}

/// A fully-configured suite × host execution. Build one with
/// [`Harness::builder`], then call [`Harness::run`] (scheduler-backed,
/// any worker count) or [`Harness::run_on`] (a caller-owned connection).
pub struct Harness<'a> {
    source: SuiteSource<'a>,
    environment: Option<&'a DonorEnvironment>,
    host: EngineDialect,
    client: ClientKind,
    provision: Provision,
    numeric: NumericMode,
    faults: FaultProfile,
    translate: bool,
    workers: usize,
    backend: BackendSpec,
    backend_env: Vec<(String, String)>,
    exec_strategy: ExecStrategy,
    plan_cache: Option<Arc<PlanCache>>,
    result_cache: Option<Arc<ResultCache>>,
    stability: Option<StabilityConfig>,
    observers: Vec<&'a dyn RunObserver>,
    label: String,
}

/// Everything one [`Harness::run`] produces: the aggregate summary plus
/// the retired worker connections (whose engines carry accumulated
/// coverage and other run-scoped state).
pub struct Run {
    /// Aggregate result of the run, in input order.
    pub summary: SuiteRunSummary,
    /// The retired worker connections — one per worker that claimed at
    /// least one file. A fully-cached run retires none.
    pub connectors: Vec<EngineConnector>,
    /// Coverage rehydrated from cache hits (empty unless a result cache
    /// replayed files). The union of this recorder with the retired
    /// connectors' coverage equals a cold run's connector coverage, so
    /// coverage experiments read both.
    pub replayed_coverage: Coverage,
    /// Backend fault counters (crashes, timeouts, restarts) when the run
    /// executed on [`BackendSpec::Subprocess`]; `None` in-process.
    pub backend_faults: Option<BackendFaultBreakdown>,
}

impl<'a> Harness<'a> {
    /// Start configuring a run. Everything except the suite is defaulted.
    ///
    /// ```
    /// use squality_core::Harness;
    /// use squality_corpus::generate_suite_scaled;
    /// use squality_engine::EngineDialect;
    /// use squality_formats::SuiteKind;
    /// use squality_runner::JsonlObserver;
    ///
    /// let suite = generate_suite_scaled(SuiteKind::Slt, 7, 0.02);
    /// let events = JsonlObserver::new();
    /// let run = Harness::builder()
    ///     .suite(&suite)
    ///     .host(EngineDialect::Duckdb)
    ///     .workers(2)
    ///     .observer(&events)
    ///     .build()
    ///     .expect("a suite was configured")
    ///     .run();
    /// assert_eq!(run.summary.host, EngineDialect::Duckdb);
    /// assert!(events.log().contains("\"event\":\"suite_finished\""));
    /// ```
    pub fn builder() -> HarnessBuilder<'a> {
        HarnessBuilder::new()
    }

    /// The resolved host engine.
    pub fn host(&self) -> EngineDialect {
        self.host
    }

    /// The run label used in suite events.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The equivalent legacy [`RunConfig`] (what the deprecated free
    /// functions used to take).
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            host: self.host,
            client: self.client,
            provision: self.provision,
            numeric: self.numeric,
            translate: self.translate,
        }
    }

    fn translation_mode(&self) -> TranslationMode {
        if self.translate {
            TranslationMode::Translated {
                from: donor_dialect(self.source.kind()).text_dialect(),
                to: self.host.text_dialect(),
            }
        } else {
            TranslationMode::Verbatim
        }
    }

    /// The donor environment this run provisions from: an explicit
    /// [`HarnessBuilder::environment`] wins; a generated suite falls back
    /// to its recorded environment; bare files have none.
    fn resolved_environment(&self) -> Option<&DonorEnvironment> {
        match (&self.environment, &self.source) {
            (Some(env), _) => Some(env),
            (None, SuiteSource::Generated(gs)) => Some(&gs.environment),
            (None, SuiteSource::Files { .. }) => None,
        }
    }

    /// Apply the configured provision level to a freshly-reset connection.
    fn provision_conn(&self, conn: &mut EngineConnector) {
        let Some(env) = self.resolved_environment() else { return };
        match self.provision {
            Provision::Full => env.provision(conn),
            Provision::CrossHost => {
                for (path, lines) in &env.data_files {
                    conn.provide_file(path, lines.clone());
                }
                for sql in &env.setup_sql {
                    let _ = conn.execute(sql);
                }
            }
            Provision::Bare => {}
        }
    }

    fn runner(&self) -> Runner {
        Runner::new(RunnerOptions {
            numeric: self.numeric,
            fresh_database: false,
            translation: self.translation_mode(),
        })
    }

    fn factory(&self) -> EngineConnectorFactory {
        let mut factory = EngineConnectorFactory::with_faults(self.host, self.client, self.faults)
            .exec_strategy(self.exec_strategy);
        if let Some(cache) = &self.plan_cache {
            factory = factory.plan_cache(Arc::clone(cache));
        }
        factory
    }

    /// The content-addressed keys this run's files cache under. The cell
    /// half hashes every outcome-relevant knob of this harness; the file
    /// half hashes each file's canonical content.
    fn file_keys(&self) -> Vec<FileKey> {
        let fingerprint = execution_fingerprint(self.host, self.exec_strategy);
        let cell = CellSpec {
            suite: self.source.kind(),
            engine_fingerprint: &fingerprint,
            client: self.client,
            provision: self.provision,
            numeric: self.numeric,
            translation: self.translation_mode(),
            faults: self.faults,
            environment: self.resolved_environment(),
            backend: self.backend.tag(),
        }
        .cell_hash();
        self.source.files().iter().map(|f| FileKey { cell, file: file_content_hash(f) }).collect()
    }

    /// Execute through the parallel scheduler: the configured worker
    /// count, a fresh provisioned connection per file, results stitched
    /// in input order, events streamed to every registered observer.
    ///
    /// With a [`HarnessBuilder::result_cache`], files whose key matches a
    /// cached entry are replayed instead of executed; everything
    /// observable (summary, events, tables, coverage unions) is
    /// byte-identical either way.
    pub fn run(&self) -> Run {
        let mut run = if matches!(self.backend, BackendSpec::Subprocess { .. }) {
            // Subprocess runs are never cached: their point is observing
            // live process faults, and coverage stays worker-side.
            self.run_subprocess()
        } else if self.stability.is_some() {
            // Stability runs are never cached either (satellite of the
            // same contract): a warm cache must not replay stale
            // verdicts, so the run executes live and the rerun arm
            // probes live too.
            self.run_uncached()
        } else {
            match &self.result_cache {
                Some(cache) => self.run_cached(Arc::clone(cache)),
                None => self.run_uncached(),
            }
        };
        if let Some(config) = &self.stability {
            crate::stability::annotate_summary(
                &self.probe_cell(),
                self.source.files(),
                &mut run.summary,
                config,
            );
        }
        run
    }

    /// The probe configuration the stability arm replicates this
    /// harness's failures under.
    fn probe_cell(&self) -> crate::stability::ProbeCell<'_> {
        crate::stability::ProbeCell {
            kind: self.source.kind(),
            host: self.host,
            client: self.client,
            provision: self.provision,
            translate: self.translate,
            faults: self.faults,
            env: self.resolved_environment(),
            label: self.label.clone(),
        }
    }

    /// Provision a subprocess connection the way [`Harness::provision_conn`]
    /// provisions an in-process one.
    fn provision_subprocess(&self, conn: &mut SubprocessConnector) {
        let Some(env) = self.resolved_environment() else { return };
        if matches!(self.provision, Provision::Bare) {
            return;
        }
        for (path, lines) in &env.data_files {
            conn.provide_file(path, lines.clone());
        }
        if matches!(self.provision, Provision::Full) {
            for ext in &env.extensions {
                conn.provide_extension(ext);
            }
        }
        for sql in &env.setup_sql {
            let _ = conn.execute(sql);
        }
    }

    /// Execute on out-of-process workers. The scheduler, runner, and
    /// event paths are the same as in-process — only the connector
    /// factory differs, which is the whole point of the redesign: a
    /// worker process dying mid-file surfaces as transport faults in the
    /// results, and the suite keeps going.
    fn run_subprocess(&self) -> Run {
        let BackendSpec::Subprocess { bin, deadline, max_restarts } = &self.backend else {
            unreachable!("run_subprocess is only called for subprocess backends");
        };
        let bin = bin
            .clone()
            .or_else(discover_worker_bin)
            // Last resort: let the OS search PATH at spawn time.
            .unwrap_or_else(|| std::path::PathBuf::from("squality-backend-worker"));
        let mut factory = SubprocessConnectorFactory::new(bin, self.host, self.client)
            .with_faults(self.faults)
            .deadline(*deadline)
            .max_restarts(*max_restarts);
        for (key, value) in std::env::vars() {
            // Forward the fault-injection hooks so crash-containment
            // tests (and CI fault legs) reach the workers.
            if key == "SQUALITY_CRASH_AFTER" || key == "SQUALITY_HANG_AFTER" {
                factory = factory.env(&key, &value);
            }
        }
        // Explicit per-harness entries land after the forwarded ones, so
        // they win (Command::env is last-wins) — seeded stability-arm
        // schedules override whatever the parent process carries.
        for (key, value) in &self.backend_env {
            factory = factory.env(key, value);
        }
        let stats = factory.stats();
        let runner = self.runner();
        let files = self.source.files();
        let prepare = |conn: &mut SubprocessConnector| self.provision_subprocess(conn);
        let execution = if self.observers.is_empty() {
            runner.run_suite_with(&factory, files, self.workers, prepare)
        } else {
            let fanout = FanoutObserver(&self.observers);
            runner.run_suite_observed(&factory, files, self.workers, &self.label, prepare, &fanout)
        };
        let mut summary = summarize(self.source.kind(), self.host, &execution.results);
        summary.translation = runner.translation_stats.counts();
        Run {
            summary,
            connectors: Vec::new(),
            replayed_coverage: Coverage::new(),
            backend_faults: Some(stats.snapshot()),
        }
    }

    fn run_uncached(&self) -> Run {
        let factory = self.factory();
        let runner = self.runner();
        let files = self.source.files();
        let prepare = |conn: &mut EngineConnector| self.provision_conn(conn);
        let execution = if self.observers.is_empty() {
            runner.run_suite_with(&factory, files, self.workers, prepare)
        } else {
            let fanout = FanoutObserver(&self.observers);
            runner.run_suite_observed(&factory, files, self.workers, &self.label, prepare, &fanout)
        };
        let mut summary = summarize(self.source.kind(), self.host, &execution.results);
        summary.translation = runner.translation_stats.counts();
        Run {
            summary,
            connectors: execution.connectors,
            replayed_coverage: Coverage::new(),
            backend_faults: None,
        }
    }

    /// The cache-aware execution path: replay hits, execute only stale
    /// files (recording per-file results, translation deltas, and
    /// coverage for storage), and stitch everything back in input order.
    ///
    /// Suite-level events are always emitted live — only per-file event
    /// blocks replay — and the [`JsonlObserver`](squality_runner::JsonlObserver)
    /// orders blocks by input index, so the log is byte-identical to a
    /// cold run's whatever mix of hits and misses occurred. Summary
    /// translation counters are summed from per-file deltas, which equals
    /// the shared-counter total of an uncached run because counters record
    /// per execution.
    fn run_cached(&self, cache: Arc<ResultCache>) -> Run {
        let started = std::time::Instant::now();
        let files = self.source.files();
        let keys = self.file_keys();
        let fanout = FanoutObserver(&self.observers);
        let observed = !self.observers.is_empty();
        let factory = self.factory();
        if observed {
            let info = squality_runner::ConnectorFactory::info(&factory);
            fanout.on_event(&RunEvent::SuiteStarted {
                label: &self.label,
                files: files.len(),
                connector: &info,
            });
        }

        let mut cached: Vec<Option<CachedFileRun>> = keys.iter().map(|k| cache.lookup(k)).collect();
        let stale: Vec<(usize, &TestFile)> = cached
            .iter()
            .enumerate()
            .filter(|(_, entry)| entry.is_none())
            .map(|(i, _)| (i, &files[i]))
            .collect();
        if observed {
            for (i, entry) in cached.iter().enumerate() {
                if let Some(run) = entry {
                    replay_file_events(&fanout, i, &run.result);
                }
            }
        }

        let (records, connectors) = if stale.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let runner = self.runner();
            let captured: Mutex<Vec<(usize, Coverage)>> = Mutex::new(Vec::new());
            let (records, connectors) = runner.run_files_recorded(
                &factory,
                &stale,
                self.workers,
                |conn: &mut EngineConnector| {
                    // Open the per-file coverage window before provisioning
                    // so provision hits are captured too — a cold run's
                    // connector accumulates them the same way.
                    conn.begin_coverage_capture();
                    self.provision_conn(conn);
                },
                |conn: &mut EngineConnector, index: usize| {
                    let window = conn.end_coverage_capture();
                    captured.lock().expect("coverage capture poisoned").push((index, window));
                },
                observed.then_some(&fanout as &dyn RunObserver),
            );
            let captured = captured.into_inner().expect("coverage capture poisoned");
            for record in &records {
                let coverage = captured
                    .iter()
                    .find(|(i, _)| *i == record.index)
                    .map(|(_, c)| c.clone())
                    .unwrap_or_default();
                cache.store(
                    &keys[record.index],
                    &CachedFileRun {
                        result: record.result.clone(),
                        translation: record.translation,
                        coverage,
                    },
                );
            }
            (records, connectors)
        };

        let mut fresh: std::collections::BTreeMap<usize, FileRunRecord> =
            records.into_iter().map(|r| (r.index, r)).collect();
        let mut results = Vec::with_capacity(files.len());
        let mut translation = TranslationCounts::default();
        let mut replayed_coverage = Coverage::new();
        for (i, entry) in cached.iter_mut().enumerate() {
            if let Some(run) = entry.take() {
                translation.merge(&run.translation);
                replayed_coverage.union_with(&run.coverage);
                results.push(run.result);
            } else {
                let record = fresh.remove(&i).expect("scheduler ran every stale file");
                translation.merge(&record.translation);
                results.push(record.result);
            }
        }
        if observed {
            emit_suite_finished(
                &fanout,
                &self.label,
                &results,
                started.elapsed().as_nanos() as u64,
            );
        }
        let mut summary = summarize(self.source.kind(), self.host, &results);
        summary.translation = translation;
        Run { summary, connectors, replayed_coverage, backend_faults: None }
    }

    /// Execute sequentially on one existing, caller-owned connection —
    /// for callers that accumulate engine state (coverage, extensions)
    /// across several suites on a single connection. Emits the same event
    /// stream as a 1-worker [`Harness::run`].
    pub fn run_on(&self, conn: &mut EngineConnector) -> SuiteRunSummary {
        let runner = self.runner();
        let files = self.source.files();
        let fanout = FanoutObserver(&self.observers);
        let observed = !self.observers.is_empty();
        let started = std::time::Instant::now();
        if observed {
            let info = conn.info();
            fanout.on_event(&RunEvent::SuiteStarted {
                label: &self.label,
                files: files.len(),
                connector: &info,
            });
        }
        let mut results = Vec::with_capacity(files.len());
        for (i, file) in files.iter().enumerate() {
            // Fresh database per file, then provision per the config.
            conn.reset();
            self.provision_conn(conn);
            results.push(if observed {
                runner.run_file_observed(conn, file, i, &fanout)
            } else {
                runner.run_file(conn, file)
            });
        }
        if observed {
            squality_runner::events::emit_suite_finished(
                &fanout,
                &self.label,
                &results,
                started.elapsed().as_nanos() as u64,
            );
        }
        let mut summary = summarize(self.source.kind(), self.host, &results);
        summary.translation = runner.translation_stats.counts();
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squality_corpus::generate_suite_scaled;
    use squality_runner::JsonlObserver;

    #[test]
    fn builder_requires_a_suite() {
        let err = Harness::builder().build().err().expect("suite missing must error");
        assert_eq!(err, HarnessError::MissingSuite);
        assert!(err.to_string().contains("suite"));
    }

    #[test]
    fn defaults_are_the_unified_runner_on_the_donor() {
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 3, 0.05);
        let h = Harness::builder().suite(&gs).build().unwrap();
        assert_eq!(h.host(), EngineDialect::Postgres);
        assert_eq!(h.label(), "PostgreSQL→PostgreSQL");
        let cfg = h.run_config();
        assert_eq!(cfg.client, ClientKind::Connector);
        assert_eq!(cfg.provision, Provision::CrossHost);
        assert!(!cfg.translate);
    }

    #[test]
    fn run_matches_any_worker_count_and_run_on() {
        let gs = generate_suite_scaled(SuiteKind::Duckdb, 5, 0.06);
        let build = |workers: usize| {
            Harness::builder()
                .suite(&gs)
                .host(EngineDialect::Sqlite)
                .workers(workers)
                .build()
                .unwrap()
        };
        let base = build(1).run().summary;
        for workers in [2, 4] {
            let got = build(workers).run().summary;
            assert_eq!(got.passed, base.passed, "workers={workers}");
            assert_eq!(got.failed, base.failed, "workers={workers}");
            assert_eq!(got.failures, base.failures, "workers={workers}");
            assert_eq!(got.skip_reasons, base.skip_reasons, "workers={workers}");
        }
        let mut conn = EngineConnector::new(EngineDialect::Sqlite, ClientKind::Connector);
        let seq = build(1).run_on(&mut conn);
        assert_eq!(seq.passed, base.passed);
        assert_eq!(seq.failures, base.failures);
    }

    #[test]
    fn files_source_runs_bare() {
        use squality_formats::{parse_slt, SltFlavor};
        let files = vec![parse_slt("probe.test", "statement ok\nSELECT 1\n", SltFlavor::Classic)];
        let events = JsonlObserver::new();
        let run = Harness::builder()
            .files(SuiteKind::Slt, &files)
            .host(EngineDialect::Mysql)
            .label("probe")
            .observer(&events)
            .build()
            .unwrap()
            .run();
        assert_eq!(run.summary.passed, 1);
        let log = events.log();
        assert!(log.contains("\"label\":\"probe\""), "{log}");
        assert!(log.contains("\"engine\":\"mysql\""), "{log}");
        assert!(log.contains("\"outcome\":\"pass\""), "{log}");
    }

    #[test]
    fn translated_harness_counts_rules() {
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 5, 0.08);
        let verbatim =
            Harness::builder().suite(&gs).host(EngineDialect::Sqlite).build().unwrap().run();
        let translated = Harness::builder()
            .suite(&gs)
            .host(EngineDialect::Sqlite)
            .translate(true)
            .build()
            .unwrap()
            .run();
        assert!(translated.summary.syntax_failures() < verbatim.summary.syntax_failures());
        assert!(translated.summary.translation.applied_total() > 0);
    }
}
