//! Failure triage: signature clustering and ddmin test-case reduction.
//!
//! The paper's authors classified thousands of cross-DBMS failures by hand
//! and manually shrank failing files into minimal bug reports (§7, Tables
//! 5–6). This module mechanizes both steps over a finished [`Study`]:
//!
//! 1. **Clustering** — every failure in the study (donor-bare runs, both
//!    matrix arms) carries a precomputed
//!    [`FailureSignature`]; grouping by signature collapses the raw
//!    failure volume into root-cause clusters, each knowing which cells
//!    it afflicts and an exemplar record to point at.
//! 2. **Reduction** — for each cluster's exemplar, a delta-debugging
//!    (`ddmin`) loop probes record subsets of the failing file, sliced
//!    with their setup closure via [`slice()`](squality_formats::slice()), until the
//!    file is minimal while *still failing with the identical signature*.
//!    Probes re-execute through a [`Harness`] on the in-process engine
//!    under the exemplar cell's exact configuration (host, client,
//!    provision, translation); clusters fan out over a worker pool, and
//!    every probe of the same statement text is a statement-plan-cache
//!    hit, which is what makes reduction fast.
//!
//! The result is the reusable asset the BugForge line of work argues for:
//! a deduplicated, minimized corpus of self-contained repro files, each
//! verified to re-fail standalone with its cluster's signature.
//!
//! # Example
//!
//! ```
//! use squality_core::{run_study, StudyConfig};
//! use squality_core::triage::{triage_study, TriageConfig};
//!
//! let study = run_study(StudyConfig::default().with_scale(0.04).with_seed(7));
//! let report = triage_study(&study, &TriageConfig::default());
//! assert!(report.clusters.len() > 0);
//! assert!(report.dedup_factor() > 1.0);
//! // Every cluster knows its taxonomy class and an exemplar record.
//! let top = &report.clusters[0];
//! println!("{} × {} ({})", top.count, top.signature.normalized, top.class_label());
//! ```

use crate::experiments::Study;
use crate::harness::Harness;
use crate::transplant::{Provision, SuiteRunSummary};
use squality_backend::BackendSpec;
use squality_bugstore::{BugArm, BugEntry, BugStore};
use squality_corpus::{donor_dialect, DonorEnvironment};
use squality_engine::{ClientKind, EngineDialect, PlanCache, ENGINE_SEMANTICS_VERSION};
use squality_formats::{
    parse_slt, slice, write_duckdb, ControlCommand, RecordId, RecordKind, SltFlavor, SuiteKind,
    TestFile, TestRecord,
};
use squality_runner::{EngineConnector, FailureSignature, Outcome, RunObserver, TaxonomyContext};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which execution arm of the study a failure came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arm {
    /// Donor suite on its own engine, bare environment (Tables 4–5).
    DonorBare,
    /// The verbatim suite × host matrix (Figure 4, Table 6).
    Verbatim,
    /// The translated arm of the matrix.
    Translated,
}

impl Arm {
    fn suffix(self) -> &'static str {
        match self {
            Arm::DonorBare => " (bare)",
            Arm::Verbatim => "",
            Arm::Translated => " (translated)",
        }
    }
}

/// One cell of the study a cluster was observed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRef {
    pub suite: SuiteKind,
    pub host: EngineDialect,
    pub arm: Arm,
}

impl CellRef {
    /// Which failure taxonomy reads this cell (Table 5 vs Table 6).
    pub fn taxonomy(self) -> TaxonomyContext {
        match self.arm {
            Arm::DonorBare => TaxonomyContext::DonorDependency,
            Arm::Verbatim | Arm::Translated => TaxonomyContext::CrossHost,
        }
    }

    /// `"PostgreSQL→sqlite (translated)"`-style display label.
    pub fn label(self) -> String {
        format!("{}→{}{}", self.suite.donor_name(), self.host.name(), self.arm.suffix())
    }

    /// The study's execution configuration for this cell: client,
    /// provision level, and whether translation was on — what a reduction
    /// probe (and the stability arm's rerun probes) must replicate to
    /// reproduce the cell's failure.
    pub(crate) fn exec(self) -> (ClientKind, Provision, bool) {
        match self.arm {
            Arm::DonorBare => (ClientKind::Connector, Provision::Bare, false),
            arm => {
                let translated = arm == Arm::Translated;
                if self.host == donor_dialect(self.suite) {
                    (ClientKind::Cli, Provision::Full, translated)
                } else {
                    (ClientKind::Connector, Provision::CrossHost, translated)
                }
            }
        }
    }
}

/// The failure a cluster points at: one concrete record to reduce from.
#[derive(Debug, Clone)]
pub struct Exemplar {
    pub cell: CellRef,
    /// Name of the failing test file within its suite.
    pub file: String,
    /// Stable record id of the failure inside that file.
    pub id: RecordId,
}

/// One root-cause cluster: all study failures sharing a signature.
#[derive(Debug, Clone)]
pub struct FailureCluster {
    pub signature: FailureSignature,
    /// Total failing records across every cell.
    pub count: usize,
    /// The cells this cluster afflicts, with per-cell counts, in study
    /// execution order.
    pub cells: Vec<(CellRef, usize)>,
    /// The first failure observed (study execution order).
    pub exemplar: Exemplar,
}

impl FailureCluster {
    /// The taxonomy row label for this cluster, read in the exemplar
    /// cell's context: a Table 5 class for donor-bare clusters, a Table 6
    /// class cross-host.
    pub fn class_label(&self) -> &'static str {
        self.signature.class_label(self.exemplar.cell.taxonomy())
    }
}

/// Triage parameters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TriageConfig {
    /// Also run the ddmin reducer over one exemplar per cluster.
    pub reduce: bool,
    /// Worker threads the reducer fans clusters out over (`0` = all
    /// cores). Purely a throughput knob: the report and the emitted
    /// repro files are byte-identical at every worker count.
    pub workers: usize,
    /// Probe budget per cluster. ddmin stops early when the budget runs
    /// out, leaving a (correct, possibly non-minimal) larger slice.
    pub max_probes: usize,
    /// Where probe runs execute. A study run on
    /// [`BackendSpec::Subprocess`] should re-verify through the same
    /// backend, so repros are confirmed against a live worker process.
    pub backend: BackendSpec,
    /// Persistent bug repository. When set, reduction becomes
    /// *incremental*: clusters whose signature is already stored (at the
    /// current engine semantics version) reuse the persisted repro with
    /// zero probes, entries stored under a stale semantics version are
    /// re-verified with a single probe, and new clusters are minimized
    /// and written back — tombstones included, so non-reproducing
    /// clusters are not re-probed every run.
    pub store: Option<Arc<BugStore>>,
}

impl Default for TriageConfig {
    fn default() -> Self {
        TriageConfig {
            reduce: false,
            workers: 0,
            max_probes: 192,
            backend: BackendSpec::InProcess,
            store: None,
        }
    }
}

impl TriageConfig {
    /// Enable or disable the reducer.
    pub fn with_reduce(mut self, reduce: bool) -> Self {
        self.reduce = reduce;
        self
    }

    /// Replace the reducer worker count (0 = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replace the per-cluster probe budget.
    pub fn with_max_probes(mut self, max_probes: usize) -> Self {
        self.max_probes = max_probes;
        self
    }

    /// Replace the probe execution backend.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Attach a persistent bug repository (see [`TriageConfig::store`]).
    pub fn with_store(mut self, store: Arc<BugStore>) -> Self {
        self.store = Some(store);
        self
    }
}

/// The outcome of reducing one cluster's exemplar file.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Index of the cluster in [`TriageReport::clusters`].
    pub cluster: usize,
    /// The exemplar file that was reduced.
    pub file: String,
    /// Flattened record count of the original file.
    pub original_records: usize,
    /// Record count of the minimized slice.
    pub reduced_records: usize,
    /// Probes spent (initial check, ddmin, and standalone verification).
    pub probes: usize,
    /// File name the repro is emitted under.
    pub repro_name: String,
    /// The self-contained repro file, in DuckDB-flavor SLT (the richest
    /// of the writers — it round-trips loops, variables, and expected
    /// error messages).
    pub repro_text: String,
    /// The emitted text was parsed back and re-executed standalone under
    /// the exemplar cell's configuration, and failed with the identical
    /// signature.
    pub verified: bool,
}

/// Aggregate reducer throughput, for the perf trajectory (BENCH output).
/// `elapsed_nanos` is wall-clock and therefore advisory — everything else
/// is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReductionStats {
    pub probes: usize,
    pub records_before: usize,
    pub records_after: usize,
    pub elapsed_nanos: u64,
}

impl ReductionStats {
    /// Probes per second (0 when nothing ran).
    pub fn probes_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.probes as f64 / (self.elapsed_nanos as f64 / 1e9)
        }
    }

    /// Records the reducer eliminated across all clusters.
    pub fn records_eliminated(&self) -> usize {
        self.records_before.saturating_sub(self.records_after)
    }
}

/// How incremental reduction interacted with the bug store, when
/// [`TriageConfig::store`] was set. `added + reused + refreshed` equals
/// the cluster count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriageStoreStats {
    /// Clusters minimized from scratch and written as new entries
    /// (tombstones for non-reproducing clusters included).
    pub added: usize,
    /// Clusters answered from the store with zero probes.
    pub reused: usize,
    /// Stale entries (older engine semantics version) re-verified with a
    /// single probe — or fully re-minimized when the old repro no longer
    /// failed.
    pub refreshed: usize,
}

/// Everything triage produces.
#[derive(Debug, Clone, Default)]
pub struct TriageReport {
    /// Raw failing records across the whole study.
    pub total_failures: usize,
    /// Signature clusters, largest first.
    pub clusters: Vec<FailureCluster>,
    /// Per-cluster reductions (empty unless [`TriageConfig::reduce`]),
    /// ordered by cluster index.
    pub reductions: Vec<Reduction>,
    /// Aggregate reducer throughput.
    pub stats: ReductionStats,
    /// Bug-store interaction counters (`None` without a store).
    pub store_stats: Option<TriageStoreStats>,
}

impl TriageReport {
    /// How many raw failures each cluster absorbs on average — the
    /// dedup factor the acceptance bar measures (≥ 10× at full scale).
    pub fn dedup_factor(&self) -> f64 {
        if self.clusters.is_empty() {
            1.0
        } else {
            self.total_failures as f64 / self.clusters.len() as f64
        }
    }

    /// The verified repro files, in cluster order.
    pub fn verified_repros(&self) -> impl Iterator<Item = &Reduction> {
        self.reductions.iter().filter(|r| r.verified)
    }
}

/// Cluster every failure of a finished study by signature. Returns the
/// raw failure total and the clusters, largest first (ties keep study
/// execution order).
pub fn cluster_failures(study: &Study) -> (usize, Vec<FailureCluster>) {
    let mut clusters: Vec<FailureCluster> = Vec::new();
    let mut index: HashMap<FailureSignature, usize> = HashMap::new();
    let mut total = 0usize;

    let mut absorb = |cell: CellRef, summary: &SuiteRunSummary| {
        for case in &summary.failures {
            let Outcome::Fail(info) = &case.result.outcome else { continue };
            total += 1;
            let at = *index.entry(info.signature.clone()).or_insert_with(|| {
                clusters.push(FailureCluster {
                    signature: info.signature.clone(),
                    count: 0,
                    cells: Vec::new(),
                    exemplar: Exemplar { cell, file: case.file.clone(), id: case.id },
                });
                clusters.len() - 1
            });
            let cluster = &mut clusters[at];
            cluster.count += 1;
            match cluster.cells.iter_mut().find(|(c, _)| *c == cell) {
                Some((_, n)) => *n += 1,
                None => cluster.cells.push((cell, 1)),
            }
        }
    };

    for run in &study.donor_runs {
        absorb(CellRef { suite: run.suite, host: run.host, arm: Arm::DonorBare }, run);
    }
    for cell in &study.matrix {
        absorb(CellRef { suite: cell.suite, host: cell.host, arm: Arm::Verbatim }, &cell.summary);
    }
    for cell in &study.translated_matrix {
        absorb(CellRef { suite: cell.suite, host: cell.host, arm: Arm::Translated }, &cell.summary);
    }

    // Largest first; the insertion index breaks ties deterministically.
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(clusters[i].count), i));
    let clusters = order.into_iter().map(|i| clusters[i].clone()).collect();
    (total, clusters)
}

/// Run the full triage pipeline over a finished study: cluster, then (when
/// configured) reduce one exemplar per cluster. See the module docs.
pub fn triage_study(study: &Study, config: &TriageConfig) -> TriageReport {
    triage_study_with_observers(study, config, &[])
}

/// [`triage_study`], streaming each cluster's standalone verification run
/// as [`RunEvent`](squality_runner::RunEvent)s to the observers — a
/// [`ProgressObserver`](squality_runner::ProgressObserver) shows one line
/// per verified cluster. (Inner ddmin probes are not streamed: clusters
/// reduce in parallel and probe volume is high.)
///
/// Clusters reduce concurrently, but observed verification runs are
/// serialized through an internal lock: observers see whole suites one
/// at a time (in cluster *completion* order, which varies with worker
/// count), so per-suite-buffering sinks like
/// [`JsonlObserver`](squality_runner::JsonlObserver) stay well-formed.
pub fn triage_study_with_observers(
    study: &Study,
    config: &TriageConfig,
    observers: &[&dyn RunObserver],
) -> TriageReport {
    let (total_failures, clusters) = cluster_failures(study);
    let mut report = TriageReport {
        total_failures,
        clusters,
        reductions: Vec::new(),
        stats: ReductionStats::default(),
        store_stats: None,
    };
    if !config.reduce || report.clusters.is_empty() {
        if config.store.is_some() {
            report.store_stats = Some(TriageStoreStats::default());
        }
        return report;
    }

    let started = std::time::Instant::now();
    let plan_cache = PlanCache::shared();
    let workers = effective_workers(config.workers, report.clusters.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Reduction>>> =
        report.clusters.iter().map(|_| Mutex::new(None)).collect();
    // Serializes the observed verification runs (see the rustdoc above).
    let observer_gate = Mutex::new(());
    let clusters = &report.clusters;
    let (added, reused, refreshed) =
        (AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cluster) = clusters.get(i) else { break };
                let (reduction, action) = process_cluster(
                    study,
                    cluster,
                    i,
                    config,
                    &plan_cache,
                    observers,
                    &observer_gate,
                );
                match action {
                    Some(StoreAction::Added) => added.fetch_add(1, Ordering::Relaxed),
                    Some(StoreAction::Reused) => reused.fetch_add(1, Ordering::Relaxed),
                    Some(StoreAction::Refreshed) => refreshed.fetch_add(1, Ordering::Relaxed),
                    None => 0,
                };
                *slots[i].lock().expect("reduction slot poisoned") = reduction;
            });
        }
    });

    for slot in slots {
        if let Some(reduction) = slot.into_inner().expect("reduction slot poisoned") {
            report.stats.probes += reduction.probes;
            report.stats.records_before += reduction.original_records;
            report.stats.records_after += reduction.reduced_records;
            report.reductions.push(reduction);
        }
    }
    if config.store.is_some() {
        report.store_stats = Some(TriageStoreStats {
            added: added.into_inner(),
            reused: reused.into_inner(),
            refreshed: refreshed.into_inner(),
        });
    }
    // Advisory only — excluded from the determinism contract.
    report.stats.elapsed_nanos = started.elapsed().as_nanos() as u64;
    report
}

/// What [`process_cluster`] did against the bug store.
enum StoreAction {
    Added,
    Reused,
    Refreshed,
}

/// Reduce one cluster, consulting the bug store first when one is
/// configured: a stored signature at the current semantics version is
/// reused verbatim (zero probes, tombstones produce no reduction row), a
/// stale entry is re-verified with one probe (falling back to full
/// minimization when its repro no longer fails), and a miss runs the
/// full [`reduce_cluster`] path and persists the result.
fn process_cluster(
    study: &Study,
    cluster: &FailureCluster,
    cluster_index: usize,
    config: &TriageConfig,
    plan_cache: &Arc<PlanCache>,
    observers: &[&dyn RunObserver],
    observer_gate: &Mutex<()>,
) -> (Option<Reduction>, Option<StoreAction>) {
    let Some(store) = &config.store else {
        let reduction = reduce_cluster(
            study,
            cluster,
            cluster_index,
            config,
            plan_cache,
            observers,
            observer_gate,
        );
        return (reduction, None);
    };

    let fingerprint = study.config.fingerprint();
    let exemplar = &cluster.exemplar;
    let gs = study.suite(exemplar.cell.suite);
    let file = gs.files.iter().find(|f| f.name == exemplar.file);
    let stability = cluster.signature.stability.clone();

    if let Some(mut entry) = store.lookup(&cluster.signature) {
        if entry.semantics_version == ENGINE_SEMANTICS_VERSION {
            // Current entry: answer from the store with zero probes. Only
            // rewrite it when the observation actually moved.
            if entry.last_seen != fingerprint || entry.stability != stability {
                entry.last_seen = fingerprint;
                entry.stability = stability;
                store.upsert(&entry);
            }
            let reduction = (!entry.repro_text.is_empty()).then(|| Reduction {
                cluster: cluster_index,
                file: exemplar.file.clone(),
                original_records: file.map_or(entry.records_before, |f| f.record_count()),
                reduced_records: entry.records_after,
                probes: 0,
                repro_name: entry.repro_name.clone(),
                repro_text: entry.repro_text.clone(),
                verified: entry.reproduced,
            });
            return (reduction, Some(StoreAction::Reused));
        }
        // Stale semantics version: one probe decides whether the stored
        // repro still fails. If it does, refresh the entry in place;
        // otherwise fall through to full re-minimization below.
        if !entry.repro_text.is_empty() {
            if let Some(file) = file {
                let env = &gs.environment;
                let probe = Prober {
                    kind: exemplar.cell.suite,
                    cell: exemplar.cell,
                    env,
                    signature: &cluster.signature,
                    plan_cache,
                    backend: &config.backend,
                };
                let mut reparsed =
                    parse_slt(&entry.repro_name, &entry.repro_text, SltFlavor::Duckdb);
                reparsed.suite = exemplar.cell.suite;
                if probe.fails_with_signature(&reparsed, &[]) {
                    entry.semantics_version = ENGINE_SEMANTICS_VERSION;
                    entry.last_seen = fingerprint;
                    entry.stability = stability;
                    entry.reproduced = true;
                    store.upsert(&entry);
                    let reduction = Reduction {
                        cluster: cluster_index,
                        file: exemplar.file.clone(),
                        original_records: file.record_count(),
                        reduced_records: entry.records_after,
                        probes: 1,
                        repro_name: entry.repro_name,
                        repro_text: entry.repro_text,
                        verified: true,
                    };
                    return (Some(reduction), Some(StoreAction::Refreshed));
                }
            }
        }
        let reduction = reduce_cluster(
            study,
            cluster,
            cluster_index,
            config,
            plan_cache,
            observers,
            observer_gate,
        );
        store_entry(store, study, cluster, reduction.as_ref(), file, &fingerprint);
        return (reduction, Some(StoreAction::Refreshed));
    }

    let reduction =
        reduce_cluster(study, cluster, cluster_index, config, plan_cache, observers, observer_gate);
    store_entry(store, study, cluster, reduction.as_ref(), file, &fingerprint);
    (reduction, Some(StoreAction::Added))
}

/// Persist one cluster's reduction outcome. A `None` reduction writes a
/// *tombstone* (empty repro text): the cluster's failure did not
/// reproduce standalone, and recording that prevents every later run
/// from re-probing it.
fn store_entry(
    store: &BugStore,
    study: &Study,
    cluster: &FailureCluster,
    reduction: Option<&Reduction>,
    file: Option<&TestFile>,
    fingerprint: &str,
) {
    let exemplar = &cluster.exemplar;
    let cell = exemplar.cell;
    let gs = study.suite(cell.suite);
    let (_, _, translate) = cell.exec();
    let translation = if translate {
        squality_runner::TranslationMode::Translated {
            from: donor_dialect(cell.suite).text_dialect(),
            to: cell.host.text_dialect(),
        }
    } else {
        squality_runner::TranslationMode::Verbatim
    };
    let mut signature = cluster.signature.clone();
    let stability = signature.stability.take();
    let entry = BugEntry {
        signature,
        stability,
        repro_name: reduction.map(|r| r.repro_name.clone()).unwrap_or_default(),
        repro_text: reduction.map(|r| r.repro_text.clone()).unwrap_or_default(),
        reproduced: reduction.is_some_and(|r| r.verified),
        suite: cell.suite,
        host: cell.host,
        arm: match cell.arm {
            Arm::DonorBare => BugArm::DonorBare,
            Arm::Verbatim => BugArm::Verbatim,
            Arm::Translated => BugArm::Translated,
        },
        translation,
        rule_counters: cell_counters(study, cell),
        environment: gs.environment.clone(),
        probes: reduction.map_or(1, |r| r.probes),
        records_before: reduction
            .map(|r| r.original_records)
            .or_else(|| file.map(|f| f.record_count()))
            .unwrap_or(0),
        records_after: reduction.map_or(0, |r| r.reduced_records),
        semantics_version: ENGINE_SEMANTICS_VERSION,
        first_seen: fingerprint.to_string(),
        last_seen: fingerprint.to_string(),
    };
    store.upsert(&entry);
}

/// The translation counters of the summary a cell ref points at.
fn cell_counters(study: &Study, cell: CellRef) -> squality_runner::TranslationCounts {
    match cell.arm {
        Arm::DonorBare => study
            .donor_runs
            .iter()
            .find(|r| r.suite == cell.suite && r.host == cell.host)
            .map(|r| r.translation),
        Arm::Verbatim => study
            .matrix
            .iter()
            .find(|c| c.suite == cell.suite && c.host == cell.host)
            .map(|c| c.summary.translation),
        Arm::Translated => study
            .translated_matrix
            .iter()
            .find(|c| c.suite == cell.suite && c.host == cell.host)
            .map(|c| c.summary.translation),
    }
    .unwrap_or_default()
}

pub(crate) fn effective_workers(requested: usize, jobs: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    };
    requested.clamp(1, jobs.max(1))
}

/// Reduce one cluster's exemplar file to a minimal slice still failing
/// with the cluster signature. Returns `None` when the exemplar file is
/// gone from the suite (cannot happen for a study's own clusters) or the
/// full file no longer reproduces the signature under the replayed cell
/// configuration (a state-dependent failure the slicer cannot close
/// over — left unreduced rather than misreported).
fn reduce_cluster(
    study: &Study,
    cluster: &FailureCluster,
    cluster_index: usize,
    config: &TriageConfig,
    plan_cache: &Arc<PlanCache>,
    observers: &[&dyn RunObserver],
    observer_gate: &Mutex<()>,
) -> Option<Reduction> {
    let exemplar = &cluster.exemplar;
    let gs = study.suite(exemplar.cell.suite);
    let file = gs.files.iter().find(|f| f.name == exemplar.file)?;
    let env = &gs.environment;
    let probe = Prober {
        kind: exemplar.cell.suite,
        cell: exemplar.cell,
        env,
        signature: &cluster.signature,
        plan_cache,
        backend: &config.backend,
    };

    let mut probes = 0usize;
    let exemplar_line = exemplar.id.line as usize;
    let candidates: Vec<usize> =
        statement_lines(&file.records).into_iter().filter(|l| *l != exemplar_line).collect();

    // The whole file must reproduce the signature before ddmin can trust
    // a "probe fails ⇒ subset insufficient" reading.
    probes += 1;
    if !probe.fails_with_signature(&probe.slice_of(file, exemplar_line, &candidates), &[]) {
        return None;
    }

    let mut budget = config.max_probes.saturating_sub(probes);
    let kept = ddmin(
        &candidates,
        &mut |subset| probe.fails_with_signature(&probe.slice_of(file, exemplar_line, subset), &[]),
        &mut budget,
    );
    probes += config.max_probes.saturating_sub(probes) - budget;

    let minimized = probe.slice_of(file, exemplar_line, &kept);
    let repro_name = format!(
        "cluster-{:03}-{}.test",
        cluster_index,
        cluster.class_label().to_lowercase().replace(' ', "-")
    );
    let repro_text = write_duckdb(&minimized);

    // Standalone verification: parse the emitted text back and re-run it
    // under the cell's configuration. This is the one observed run per
    // cluster; the gate keeps concurrent clusters' event streams from
    // interleaving inside per-suite-buffering observers.
    probes += 1;
    let mut reparsed = parse_slt(&repro_name, &repro_text, SltFlavor::Duckdb);
    reparsed.suite = exemplar.cell.suite;
    let verified = if observers.is_empty() {
        probe.fails_with_signature(&reparsed, observers)
    } else {
        let _serialized = observer_gate.lock().expect("observer gate poisoned");
        probe.fails_with_signature(&reparsed, observers)
    };

    Some(Reduction {
        cluster: cluster_index,
        file: exemplar.file.clone(),
        original_records: file.record_count(),
        reduced_records: minimized.record_count(),
        probes,
        repro_name,
        repro_text,
        verified,
    })
}

/// One cluster's probe environment: enough to execute any record slice
/// under the exemplar cell's configuration and ask "does it still fail
/// with the target signature?".
struct Prober<'a> {
    kind: SuiteKind,
    cell: CellRef,
    env: &'a DonorEnvironment,
    signature: &'a FailureSignature,
    plan_cache: &'a Arc<PlanCache>,
    backend: &'a BackendSpec,
}

impl Prober<'_> {
    fn slice_of(&self, file: &TestFile, exemplar_line: usize, extra: &[usize]) -> TestFile {
        let mut keep: Vec<RecordId> = extra.iter().map(|l| RecordId::new(*l, 0)).collect();
        keep.push(RecordId::new(exemplar_line, 0));
        slice(file, &keep)
    }

    fn fails_with_signature(&self, candidate: &TestFile, observers: &[&dyn RunObserver]) -> bool {
        let (client, provision, translate) = self.cell.exec();
        let files = std::slice::from_ref(candidate);
        let mut builder = Harness::builder()
            .files(self.kind, files)
            .environment(self.env)
            .host(self.cell.host)
            .client(client)
            .provision(provision)
            .translate(translate)
            .label(format!("triage {} {}", self.cell.label(), candidate.name));
        for obs in observers {
            builder = builder.observer(*obs);
        }
        let harness = builder.backend(self.backend.clone()).build().expect("files are always set");
        let summary = if matches!(self.backend, BackendSpec::Subprocess { .. }) {
            // Re-verify against a live worker process: the repro must
            // reproduce across the process boundary too.
            harness.run().summary
        } else {
            // One connection per probe batch, sharing the triage-wide plan
            // cache: replayed statement texts parse once across all probes.
            let mut conn = EngineConnector::new(self.cell.host, client);
            conn.set_plan_cache(Arc::clone(self.plan_cache));
            harness.run_on(&mut conn)
        };
        // Compare modulo the stability field: probe failures are always
        // pre-annotation (`stability: None`), while a cluster signature
        // from a stability-arm study carries its verdict.
        let mut want = self.signature.clone();
        want.stability = None;
        summary.failures.iter().any(|f| match &f.result.outcome {
            Outcome::Fail(info) => info.signature == want,
            _ => false,
        })
    }
}

/// Source lines of every statement/query record, loop bodies included.
fn statement_lines(records: &[TestRecord]) -> Vec<usize> {
    let mut out = Vec::new();
    fn walk(records: &[TestRecord], out: &mut Vec<usize>) {
        for rec in records {
            match &rec.kind {
                RecordKind::Statement { .. } | RecordKind::Query { .. } => out.push(rec.line),
                RecordKind::Control(ControlCommand::Loop { body, .. })
                | RecordKind::Control(ControlCommand::Foreach { body, .. }) => walk(body, out),
                RecordKind::Control(_) => {}
            }
        }
    }
    walk(records, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

/// Delta-debugging minimization over `candidates`: find a small subset for
/// which `probe` still returns `true`, assuming `probe(candidates)` holds.
/// Deterministic; spends at most `budget` probes (decremented in place).
fn ddmin(
    candidates: &[usize],
    probe: &mut dyn FnMut(&[usize]) -> bool,
    budget: &mut usize,
) -> Vec<usize> {
    let mut current: Vec<usize> = candidates.to_vec();
    if current.is_empty() || *budget == 0 {
        return current;
    }
    // Quick win first: the exemplar plus its setup closure alone.
    *budget -= 1;
    if probe(&[]) {
        return Vec::new();
    }
    let mut n = 2usize;
    while current.len() >= 2 && *budget > 0 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() && *budget > 0 {
            let end = (start + chunk).min(current.len());
            let complement: Vec<usize> =
                current[..start].iter().chain(&current[end..]).copied().collect();
            *budget -= 1;
            if probe(&complement) {
                current = complement;
                n = 2.max(n - 1);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

/// The simplest reducer entry point, for benches and standalone use: run
/// `file` bare on `host`, take the **first** failure as the reduction
/// target, and ddmin the file down to a minimal slice still failing with
/// that signature. Returns `None` when the file does not fail at all.
///
/// ```
/// use squality_core::triage::reduce_file;
/// use squality_engine::EngineDialect;
/// use squality_formats::{parse_slt, SltFlavor, SuiteKind};
///
/// let text = "\
/// statement ok
/// CREATE TABLE t(a INTEGER)
///
/// statement ok
/// INSERT INTO t VALUES (1)
///
/// query I nosort
/// SELECT count(*) FROM missing_table
/// ----
/// 1
/// ";
/// let file = parse_slt("probe.test", text, SltFlavor::Classic);
/// let r = reduce_file(&file, SuiteKind::Slt, EngineDialect::Sqlite, 64).unwrap();
/// // The failing query needs neither the CREATE nor the INSERT.
/// assert_eq!(r.reduced.record_count(), 1);
/// assert!(r.probes >= 1);
/// ```
pub fn reduce_file(
    file: &TestFile,
    kind: SuiteKind,
    host: EngineDialect,
    max_probes: usize,
) -> Option<FileReduction> {
    let env = DonorEnvironment::default();
    let plan_cache = PlanCache::shared();
    let cell = CellRef { suite: kind, host, arm: Arm::DonorBare };

    // Find the target: the first failure of the bare run.
    let mut conn = EngineConnector::new(host, ClientKind::Connector);
    conn.set_plan_cache(Arc::clone(&plan_cache));
    let summary = Harness::builder()
        .files(kind, std::slice::from_ref(file))
        .host(host)
        .build()
        .expect("files are set")
        .run_on(&mut conn);
    let target = summary.failures.first()?;
    let Outcome::Fail(info) = &target.result.outcome else { return None };
    let signature = info.signature.clone();
    let exemplar_line = target.id.line as usize;

    let probe = Prober {
        kind,
        cell,
        env: &env,
        signature: &signature,
        plan_cache: &plan_cache,
        backend: &BackendSpec::InProcess,
    };
    let candidates: Vec<usize> =
        statement_lines(&file.records).into_iter().filter(|l| *l != exemplar_line).collect();
    let mut budget = max_probes;
    let kept = ddmin(
        &candidates,
        &mut |subset| probe.fails_with_signature(&probe.slice_of(file, exemplar_line, subset), &[]),
        &mut budget,
    );
    let reduced = probe.slice_of(file, exemplar_line, &kept);
    Some(FileReduction {
        probes: max_probes - budget,
        original_records: file.record_count(),
        reduced_records: reduced.record_count(),
        signature,
        reduced,
    })
}

/// What [`reduce_file`] produces.
#[derive(Debug, Clone)]
pub struct FileReduction {
    /// Probes spent.
    pub probes: usize,
    pub original_records: usize,
    pub reduced_records: usize,
    /// The reduction target.
    pub signature: FailureSignature,
    /// The minimized file (exemplar + surviving records + setup closure).
    pub reduced: TestFile,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_study, StudyConfig};

    fn study() -> Study {
        run_study(StudyConfig::default().with_seed(21).with_scale(0.06))
    }

    #[test]
    fn clustering_dedupes_heavily() {
        let s = study();
        let (total, clusters) = cluster_failures(&s);
        assert!(total > 0);
        assert!(!clusters.is_empty());
        assert!(
            clusters.len() * 10 <= total,
            "dedup below 10x: {total} failures -> {} clusters",
            clusters.len()
        );
        // Largest-first ordering.
        for pair in clusters.windows(2) {
            assert!(pair[0].count >= pair[1].count);
        }
        // Counts are consistent.
        assert_eq!(clusters.iter().map(|c| c.count).sum::<usize>(), total);
        for c in &clusters {
            assert_eq!(c.cells.iter().map(|(_, n)| n).sum::<usize>(), c.count);
        }
    }

    #[test]
    fn clusters_span_cells() {
        let s = study();
        let (_, clusters) = cluster_failures(&s);
        // Cross-DBMS root causes afflict several cells (the same missing
        // function fails on every non-donor host).
        assert!(
            clusters.iter().any(|c| c.cells.len() >= 3),
            "no cluster spans 3+ cells: {:?}",
            clusters.iter().map(|c| c.cells.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reduction_minimizes_and_verifies() {
        let s = study();
        let config = TriageConfig::default().with_reduce(true).with_workers(2).with_max_probes(96);
        let report = triage_study(&s, &config);
        assert!(!report.reductions.is_empty(), "no cluster reduced");
        let verified = report.verified_repros().count();
        assert!(verified > 0, "no reduction verified standalone");
        for r in &report.reductions {
            assert!(r.reduced_records <= r.original_records, "{:?}", r.file);
            assert!(r.probes >= 1);
            if r.verified {
                assert!(!r.repro_text.is_empty());
            }
        }
        // The bulk of the records must be gone: reduction is the point.
        assert!(
            report.stats.records_after * 2 < report.stats.records_before,
            "weak reduction: {} -> {}",
            report.stats.records_before,
            report.stats.records_after
        );
        assert_eq!(report.stats.probes, report.reductions.iter().map(|r| r.probes).sum());
    }

    #[test]
    fn triage_is_deterministic_across_worker_counts() {
        let s = study();
        let run = |workers: usize| {
            triage_study(
                &s,
                &TriageConfig::default()
                    .with_reduce(true)
                    .with_workers(workers)
                    .with_max_probes(48),
            )
        };
        let base = run(1);
        let base_table = crate::report::triage_table(&base);
        assert!(base_table.contains("raw failures ->"), "{base_table}");
        for workers in [2, 8] {
            let got = run(workers);
            assert_eq!(got.total_failures, base.total_failures, "workers={workers}");
            assert_eq!(got.clusters.len(), base.clusters.len(), "workers={workers}");
            for (a, b) in base.clusters.iter().zip(got.clusters.iter()) {
                assert_eq!(a.signature, b.signature, "workers={workers}");
                assert_eq!(a.count, b.count, "workers={workers}");
                assert_eq!(a.cells, b.cells, "workers={workers}");
            }
            assert_eq!(got.reductions.len(), base.reductions.len(), "workers={workers}");
            for (a, b) in base.reductions.iter().zip(got.reductions.iter()) {
                assert_eq!(a.repro_name, b.repro_name, "workers={workers}");
                assert_eq!(a.repro_text, b.repro_text, "workers={workers}");
                assert_eq!(a.probes, b.probes, "workers={workers}");
                assert_eq!(a.verified, b.verified, "workers={workers}");
            }
            // The rendered triage table — and therefore the emitted repro
            // set — is byte-identical at every worker count.
            assert_eq!(crate::report::triage_table(&got), base_table, "workers={workers}");
        }
    }

    fn temp_store(tag: &str) -> Arc<BugStore> {
        let dir = std::env::temp_dir()
            .join(format!("squality-triage-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BugStore::shared(dir)
    }

    #[test]
    fn second_store_run_reuses_every_cluster_with_zero_probes() {
        let s = study();
        let store = temp_store("incremental");
        let config = TriageConfig::default()
            .with_reduce(true)
            .with_workers(2)
            .with_max_probes(48)
            .with_store(Arc::clone(&store));
        let cold = triage_study(&s, &config);
        let cold_stats = cold.store_stats.expect("store stats present");
        assert_eq!(cold_stats.added, cold.clusters.len(), "every cluster stored");
        assert_eq!((cold_stats.reused, cold_stats.refreshed), (0, 0));
        assert!(cold.stats.probes > 0, "cold run probes");
        // Tombstones included: the store holds one entry per cluster.
        assert_eq!(store.entries().len(), cold.clusters.len());

        let warm = triage_study(&s, &config);
        let warm_stats = warm.store_stats.expect("store stats present");
        assert_eq!(warm_stats.reused, warm.clusters.len(), "every cluster reused");
        assert_eq!((warm_stats.added, warm_stats.refreshed), (0, 0));
        // The acceptance bar: an unchanged study performs zero ddmin
        // probes on the second run.
        assert_eq!(warm.stats.probes, 0, "warm run must not probe");
        // Same reductions, modulo the probe counts.
        assert_eq!(warm.reductions.len(), cold.reductions.len());
        for (a, b) in cold.reductions.iter().zip(warm.reductions.iter()) {
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.repro_name, b.repro_name);
            assert_eq!(a.repro_text, b.repro_text);
            assert_eq!(a.verified, b.verified);
            assert_eq!(b.probes, 0);
        }
        store.clear().unwrap();
    }

    #[test]
    fn stale_semantics_entries_are_reverified_not_reminimized() {
        let s = study();
        let store = temp_store("stale");
        let config = TriageConfig::default()
            .with_reduce(true)
            .with_workers(2)
            .with_max_probes(48)
            .with_store(Arc::clone(&store));
        let cold = triage_study(&s, &config);
        // Age every entry: pretend it was verified under older engine
        // semantics.
        for (_, mut entry) in store.entries() {
            entry.semantics_version = ENGINE_SEMANTICS_VERSION - 1;
            store.store(&entry);
        }
        let refreshed = triage_study(&s, &config);
        let stats = refreshed.store_stats.expect("store stats present");
        assert_eq!(stats.refreshed, refreshed.clusters.len(), "every cluster refreshed");
        assert_eq!(stats.reused, 0);
        // Verified repros re-verify with exactly one probe each — never a
        // full ddmin pass. Tombstoned and unverified clusters may fall
        // back to full minimization, so bound rather than equate.
        let verified_cold = cold.reductions.iter().filter(|r| r.verified).count();
        let single_probe =
            refreshed.reductions.iter().filter(|r| r.verified && r.probes == 1).count();
        assert!(verified_cold > 0);
        assert_eq!(single_probe, verified_cold, "verified entries take one probe");
        // The store is current again: a third run reuses everything.
        let warm = triage_study(&s, &config);
        assert_eq!(warm.stats.probes, 0);
        assert_eq!(warm.store_stats.expect("stats").reused, warm.clusters.len());
        store.clear().unwrap();
    }

    #[test]
    fn store_entries_carry_provenance() {
        let s = study();
        let store = temp_store("provenance");
        let config = TriageConfig::default()
            .with_reduce(true)
            .with_workers(2)
            .with_max_probes(48)
            .with_store(Arc::clone(&store));
        let report = triage_study(&s, &config);
        let fingerprint = s.config.fingerprint();
        let entries = store.entries();
        assert_eq!(entries.len(), report.clusters.len());
        for (_, entry) in &entries {
            assert!(entry.signature.stability.is_none(), "stored signatures are pre-annotation");
            assert_eq!(entry.semantics_version, ENGINE_SEMANTICS_VERSION);
            assert_eq!(entry.first_seen, fingerprint);
            assert_eq!(entry.last_seen, fingerprint);
            if entry.reproduced {
                assert!(!entry.repro_text.is_empty());
                assert!(entry.records_after <= entry.records_before);
            }
        }
        // At least one verified entry replays standalone from the entry
        // alone (environment included) — the replay service's contract.
        assert!(entries.iter().any(|(_, e)| e.reproduced), "no verified entry stored");
        store.clear().unwrap();
    }

    #[test]
    fn ddmin_finds_single_culprits() {
        // Probe: "true iff 7 is in the set" — minimal subset is {7}.
        let candidates: Vec<usize> = (0..32).collect();
        let mut budget = 256;
        let kept = ddmin(&candidates, &mut |s| s.contains(&7), &mut budget);
        assert_eq!(kept, vec![7]);
        // Empty needs: minimal is the empty set, found in one probe.
        let mut budget = 8;
        let kept = ddmin(&candidates, &mut |_| true, &mut budget);
        assert!(kept.is_empty());
        assert_eq!(budget, 7);
    }

    #[test]
    fn ddmin_respects_budget() {
        let candidates: Vec<usize> = (0..64).collect();
        let mut budget = 3;
        let _ = ddmin(&candidates, &mut |s| s.len() >= 60, &mut budget);
        assert_eq!(budget, 0);
    }
}
