//! Render every table and figure of the paper's evaluation from a [`Study`],
//! with the paper's published values alongside for comparison.

use crate::experiments::{
    dependency_breakdown, difficulty_summary, incompatibility_breakdown, Study, EXECUTED_SUITES,
};
use squality_analysis::{
    command_usage, compliance, loc_stats, predicate_distribution, statement_distribution,
};
use squality_corpus::{donor_dialect, SuiteProfile};
use squality_engine::EngineDialect;
use squality_formats::{command_count, feature_matrix, SuiteKind};
use squality_runner::{DependencyClass, IncompatibilityClass, ReuseDifficulty};
use squality_sqltext::PredicateBucket;

fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Table 1: DBMS rankings and test-suite metadata (paper values plus the
/// generated corpus sizes used in this run).
pub fn table1(study: &Study) -> String {
    let mut out = String::from(
        "Table 1. DBMS rankings and their test suites information\n\
         DBMS        DB-Engines  GitHub   DBMS      Paper   Generated  Generated\n\
         Names       Rankings    Stars    Version   Files   Files      Records\n",
    );
    for suite in SuiteKind::ALL {
        let p = SuiteProfile::for_suite(suite);
        let gs = study.suite(suite);
        out.push_str(&format!(
            "{:<11} {:<11} {:<8} {:<9} {:<7} {:<10} {}\n",
            suite.donor_name(),
            p.paper_db_engines_rank,
            format!("{}k", p.paper_github_stars_k),
            p.paper_dbms_version,
            p.paper_test_files,
            gs.files.len(),
            gs.total_records(),
        ));
    }
    out
}

/// Figure 1: lines of code per test file (the paper plots the distribution
/// on a log scale; the quartiles convey the same shape).
pub fn figure1(study: &Study) -> String {
    let mut out = String::from(
        "Figure 1. Lines of code per test file (native format)\n\
         Suite        files   min   p25   median   p75    max     mean\n",
    );
    for suite in SuiteKind::ALL {
        let s = loc_stats(&study.suite(suite).files);
        out.push_str(&format!(
            "{:<12} {:<7} {:<5} {:<5} {:<8} {:<6} {:<7} {:.1}\n",
            suite.donor_name(),
            s.files,
            s.min,
            s.p25,
            s.median,
            s.p75,
            s.max,
            s.mean,
        ));
    }
    out
}

/// Table 2: non-SQL commands of each test runner.
pub fn table2(study: &Study) -> String {
    let mut out = String::from(
        "Table 2. Non-SQL commands of each DBMS test runner\n\
         Feature            SQLite  MySQL  PostgreSQL  DuckDB\n",
    );
    let suites = [SuiteKind::Slt, SuiteKind::MysqlTest, SuiteKind::PgRegress, SuiteKind::Duckdb];
    let mark = |b: bool| if b { "yes" } else { "-" };
    let fm: Vec<_> = suites.iter().map(|s| feature_matrix(*s)).collect();
    for (label, get) in [
        ("Include", 0usize),
        ("Set Variable", 1),
        ("Load", 2),
        ("Loop", 3),
        ("Skiptest", 4),
        ("Multi-Connections", 5),
    ] {
        let v = |i: usize| {
            let f = fm[i];
            match get {
                0 => f.include,
                1 => f.set_variable,
                2 => f.load,
                3 => f.loop_,
                4 => f.skiptest,
                _ => f.multi_connections,
            }
        };
        out.push_str(&format!(
            "{:<18} {:<7} {:<6} {:<11} {}\n",
            label,
            mark(v(0)),
            mark(v(1)),
            mark(v(2)),
            mark(v(3)),
        ));
    }
    out.push_str(&format!(
        "{:<18} {:<7} {:<6} {:<11} {}\n",
        "Runner Commands",
        command_count(SuiteKind::Slt),
        command_count(SuiteKind::MysqlTest),
        format!("{} (CLI)", command_count(SuiteKind::PgRegress)),
        command_count(SuiteKind::Duckdb),
    ));
    // Commands actually used by the generated corpora.
    out.push_str("Used in corpus    ");
    for s in suites {
        let u = command_usage(&study.suite(s).files);
        out.push_str(&format!(" {:<6}", u.distinct()));
    }
    out.push('\n');
    out
}

/// Figure 2: distribution of SQL statement types per suite.
pub fn figure2(study: &Study) -> String {
    let mut out = String::from("Figure 2. Distribution of SQL statement types\n");
    for suite in [SuiteKind::Slt, SuiteKind::PgRegress, SuiteKind::Duckdb] {
        let d = statement_distribution(&study.suite(suite).files);
        out.push_str(&format!("  {} ({} statements):\n", suite.donor_name(), d.total));
        for (label, frac) in d.ranked().into_iter().take(12) {
            let bar = "#".repeat(((frac * 120.0).round() as usize).clamp(1, 70));
            out.push_str(&format!("    {label:<16} {:>7}  {bar}\n", pct(frac)));
        }
    }
    out
}

/// Table 3: standard-compliance percentages.
pub fn table3(study: &Study) -> String {
    let mut out = String::from(
        "Table 3. Standard-compliant SQL statements among the test cases\n\
         Suite        Standard SQL (paper)   Exclusive files (paper)   w/ CREATE INDEX\n",
    );
    let paper = [
        (SuiteKind::Slt, "99.76%", "63.92%"),
        (SuiteKind::PgRegress, "68.89%", "10.37%"),
        (SuiteKind::Duckdb, "76.14%", "16.24%"),
    ];
    for (suite, p_std, p_files) in paper {
        let c = compliance(&study.suite(suite).files);
        out.push_str(&format!(
            "{:<12} {:<8} ({:<7})      {:<8} ({:<7})       {}\n",
            suite.donor_name(),
            pct(c.statement_fraction),
            p_std,
            pct(c.exclusive_file_fraction),
            p_files,
            pct(c.exclusive_file_fraction_with_index),
        ));
    }
    out
}

/// Figure 3: WHERE-predicate token buckets.
pub fn figure3(study: &Study) -> String {
    let mut out = String::from(
        "Figure 3. Tokens in WHERE predicates of SELECT statements\n\
         Suite        0        1-2      3-10     11-100   100+     joins  implicit  inner\n",
    );
    for suite in [SuiteKind::Slt, SuiteKind::PgRegress, SuiteKind::Duckdb] {
        let r = predicate_distribution(&study.suite(suite).files);
        out.push_str(&format!(
            "{:<12} {:<8} {:<8} {:<8} {:<8} {:<8} {:<6} {:<9} {}\n",
            suite.donor_name(),
            pct(r.bucket_fractions[0]),
            pct(r.bucket_fractions[1]),
            pct(r.bucket_fractions[2]),
            pct(r.bucket_fractions[3]),
            pct(r.bucket_fractions[4]),
            pct(r.join_fraction),
            pct(r.implicit_join_fraction),
            pct(r.inner_join_fraction),
        ));
    }
    let _ = PredicateBucket::ALL; // axis order documented by the type
    out
}

/// Table 4: running donor test suites against the donor (bare environment).
pub fn table4(study: &Study) -> String {
    let mut out = String::from(
        "Table 4. Running donor test suites against donor (bare environment)\n\
         Suite        Total     Executed  Failed   (paper: total/executed/failed)\n",
    );
    let paper = [
        (SuiteKind::Slt, "7,406,130 / 5,939,879 / 2"),
        (SuiteKind::PgRegress, "36,677 / 35,534 / 4,075"),
        (SuiteKind::Duckdb, "33,113 / 20,619 / 1,035"),
    ];
    for (suite, paper_vals) in paper {
        let s = study.donor_run(suite);
        out.push_str(&format!(
            "{:<12} {:<9} {:<9} {:<8} ({paper_vals})\n",
            suite.donor_name(),
            s.total,
            s.executed,
            s.failed,
        ));
    }
    out
}

/// Table 5: classification of sampled donor failures.
pub fn table5(study: &Study) -> String {
    let mut out = String::from(
        "Table 5. Classification of sampled failing donor test cases\n\
         Reason       SQLite   DuckDB   PostgreSQL   (paper: SQLite/DuckDB/PostgreSQL)\n",
    );
    let paper: &[(&str, &str)] = &[
        ("File Paths", "0 / 22 / 14"),
        ("Setting", "0 / 0 / 7"),
        ("Set Up", "0 / 0 / 67"),
        ("Extension", "0 / 0 / 10"),
        ("Format", "0 / 58 / 0"),
        ("Numeric", "0 / 17 / 0"),
        ("Exception", "0 / 2 / 0"),
        ("Runner", "2 / 1 / 2"),
    ];
    let samples: Vec<_> = [SuiteKind::Slt, SuiteKind::Duckdb, SuiteKind::PgRegress]
        .iter()
        .map(|s| dependency_breakdown(study.donor_run(*s), study.config.seed))
        .collect();
    for (class, (label, paper_vals)) in DependencyClass::ALL.iter().zip(paper) {
        let v = |i: usize| *samples[i].get(class).unwrap_or(&0);
        out.push_str(&format!(
            "{:<12} {:<8} {:<8} {:<12} ({paper_vals})\n",
            label,
            v(0),
            v(1),
            v(2),
        ));
    }
    out
}

/// Figure 4: the success-rate heatmap.
pub fn figure4(study: &Study) -> String {
    let mut out = String::from(
        "Figure 4. Percentage of test cases that execute successfully\n\
         Test Suite   SQLite     PostgreSQL  DuckDB     MySQL\n",
    );
    let hosts = [
        EngineDialect::Sqlite,
        EngineDialect::Postgres,
        EngineDialect::Duckdb,
        EngineDialect::Mysql,
    ];
    let paper = [
        (SuiteKind::Slt, ["100.00%", "99.80%", "98.11%", "99.99%"]),
        (SuiteKind::PgRegress, ["30.51%", "100.00%", "28.62%", "25.08%"]),
        (SuiteKind::Duckdb, ["51.45%", "49.33%", "100.00%", "34.69%"]),
    ];
    for (suite, paper_row) in paper {
        let mut line = format!("{:<12}", suite.donor_name());
        for (host, p) in hosts.iter().zip(paper_row.iter()) {
            let r = study.cell(suite, *host).summary.success_rate();
            line.push_str(&format!(" {:>7} ", pct(r)));
            line.push_str(&format!("[{p}]"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("(measured [paper]; diagonal uses the donor environment)\n");
    out
}

/// Table 6: failure reasons per suite × host.
pub fn table6(study: &Study) -> String {
    let mut out = String::from("Table 6. Reasons for failed test cases across hosts\n");
    for suite in EXECUTED_SUITES {
        out.push_str(&format!("  Donor suite: {}\n", suite.donor_name()));
        out.push_str("    Host         ");
        for class in IncompatibilityClass::ALL {
            out.push_str(&format!("{:<12}", class.label()));
        }
        out.push_str("Timeout  Crash\n");
        for host in EngineDialect::ALL {
            if host == donor_dialect(suite) {
                continue;
            }
            let cell = study.cell(suite, host);
            let counts = incompatibility_breakdown(cell, study.config.seed);
            out.push_str(&format!("    {:<12} ", host.name()));
            for class in IncompatibilityClass::ALL {
                out.push_str(&format!("{:<12}", counts.get(&class).unwrap_or(&0)));
            }
            out.push_str(&format!(
                "{:<8} {}\n",
                cell.summary.hangs.len(),
                cell.summary.crashes.len()
            ));
        }
    }
    out.push_str(
        "(SLT cells analysed exhaustively; others are 100-case samples, like the paper)\n",
    );
    out
}

/// Table 7: reuse-difficulty summary per suite.
pub fn table7(study: &Study) -> String {
    let mut out = String::from(
        "Table 7. Test cases that bring difficulties for reuse\n\
         Category                    SQLite     DuckDB     PostgreSQL  (paper)\n",
    );
    let paper = [
        ("Dialect-specific features", "0.1% / 70.2% / 72.7%"),
        ("Syntax differences", "12.8% / 23.9% / 26.4%"),
        ("Semantic differences", "87.1% / 5.9% / 0.9%"),
    ];
    let sums: Vec<_> = [SuiteKind::Slt, SuiteKind::Duckdb, SuiteKind::PgRegress]
        .iter()
        .map(|s| difficulty_summary(study, *s))
        .collect();
    for (difficulty, (label, paper_vals)) in ReuseDifficulty::ALL.iter().zip(paper) {
        out.push_str(&format!(
            "{:<27} {:<10} {:<10} {:<11} ({paper_vals})\n",
            label,
            pct(*sums[0].get(difficulty).unwrap_or(&0.0)),
            pct(*sums[1].get(difficulty).unwrap_or(&0.0)),
            pct(*sums[2].get(difficulty).unwrap_or(&0.0)),
        ));
    }
    out
}

/// Table 8: coverage of original suite vs SQuaLity union.
pub fn table8(study: &Study) -> String {
    let mut out = String::from(
        "Table 8. Feature coverage: original suite vs SQuaLity union\n\
         Engine       Original line/branch     SQuaLity line/branch   (paper line/branch orig -> squality)\n",
    );
    let paper = [
        (EngineDialect::Sqlite, "26.9%/19.8% -> 43.4%/34.5%"),
        (EngineDialect::Duckdb, "72.8%/46.4% -> 74.0%/47.2%"),
        (EngineDialect::Postgres, "62.1%/47.2% -> 63.0%/48.2%"),
    ];
    for (engine, paper_vals) in paper {
        let row = study.coverage.iter().find(|r| r.engine == engine).expect("coverage row");
        out.push_str(&format!(
            "{:<12} {:<8} / {:<12} {:<8} / {:<10} ({paper_vals})\n",
            engine.name(),
            pct(row.original_line),
            pct(row.original_branch),
            pct(row.squality_line),
            pct(row.squality_branch),
        ));
    }
    out
}

/// The translated arm: host-side error rates per cell, verbatim vs
/// translated, plus the per-rule rewrite counters. This is the
/// reproduction's analogue of the paper's "what if we adapt the
/// statements?" discussion (RQ4: most cross-DBMS failures are mundane
/// syntax/type/function differences, not bugs).
pub fn translation_table(study: &Study) -> String {
    let mut out = String::from(
        "Translation arm. Host-side failures, verbatim vs translated\n\
         Donor suite  Host         Verbatim fail/syntax   Translated fail/syntax   Success v->t\n",
    );
    if study.translated_matrix.is_empty() {
        out.push_str("(translated arm not run: StudyConfig.translated_arm = false)\n");
        return out;
    }
    for suite in EXECUTED_SUITES {
        for host in EngineDialect::ALL {
            if host == donor_dialect(suite) {
                continue;
            }
            let v = &study.cell(suite, host).summary;
            let t = &study.translated_cell(suite, host).expect("arm ran").summary;
            out.push_str(&format!(
                "{:<12} {:<12} {:>7} / {:<12} {:>7} / {:<15} {} -> {}\n",
                suite.donor_name(),
                host.name(),
                v.failed,
                v.syntax_failures(),
                t.failed,
                t.syntax_failures(),
                pct(v.success_rate()),
                pct(t.success_rate()),
            ));
        }
    }
    let counts = study.translation_counts();
    out.push_str(&format!(
        "Statement executions translated: {} (pass-through: {})\n",
        counts.translated, counts.passthrough
    ));
    out.push_str("Rule                 Applied   Skipped (host-incompatible, untranslatable)\n");
    for rule in squality_runner::TranslationRule::ALL {
        out.push_str(&format!(
            "{:<20} {:<9} {}\n",
            rule.label(),
            counts.applied_for(rule),
            counts.skipped_for(rule),
        ));
    }
    out.push_str(&format!(
        "Total                {:<9} {}\n",
        counts.applied_total(),
        counts.skipped_total()
    ));
    out
}

/// §6 bug findings: the crashes and hangs rediscovered by cross-suite runs.
pub fn bug_report(study: &Study) -> String {
    let crashes: Vec<_> = study.bugs.iter().filter(|b| b.is_crash).collect();
    let hangs: Vec<_> = study.bugs.iter().filter(|b| !b.is_crash).collect();
    let mut out = format!(
        "Bug findings (paper Section 6: 3 crashes, 3 hangs)\n\
         Found: {} crash signatures, {} hang signatures\n",
        crashes.len(),
        hangs.len()
    );
    for b in &study.bugs {
        out.push_str(&format!(
            "  [{}] {} on {} via {} suite: {}\n      {}\n",
            if b.is_crash { "CRASH" } else { "HANG" },
            b.incident.file,
            b.host.name(),
            b.donor_suite.donor_name(),
            b.incident.sql.as_deref().unwrap_or("<control>"),
            b.incident.message,
        ));
    }
    out
}

/// The triage table: every root-cause signature cluster across the whole
/// study (donor-bare runs plus both matrix arms), largest first, with the
/// taxonomy class, the cells it afflicts, and an exemplar record to look
/// at — the mechanized version of the paper's manual failure analysis
/// (§7). When the report carries reductions, a ddmin summary follows:
/// per-cluster record counts before/after and whether the emitted repro
/// re-failed standalone with the identical signature.
pub fn triage_table(report: &crate::triage::TriageReport) -> String {
    let mut out = String::from("Failure triage. Root-cause signature clusters\n");
    out.push_str(&format!(
        "{} raw failures -> {} clusters (dedup {:.1}x)\n",
        report.total_failures,
        report.clusters.len(),
        report.dedup_factor()
    ));
    out.push_str(&format!(
        "{:<5} {:<15} {:<7} {:<6} {:<28} Signature\n",
        "#", "Class", "Count", "Cells", "Exemplar"
    ));
    for (i, c) in report.clusters.iter().enumerate() {
        out.push_str(&format!(
            "{:<5} {:<15} {:<7} {:<6} {:<28} [{}] {}\n",
            format!("#{i:03}"),
            c.class_label(),
            c.count,
            c.cells.len(),
            format!("{} {} ({})", c.exemplar.file, c.exemplar.id, c.exemplar.cell.label()),
            c.signature.statement,
            c.signature.normalized,
        ));
    }
    if !report.reductions.is_empty() {
        let verified = report.verified_repros().count();
        out.push_str(&format!(
            "Reduction (ddmin): {} clusters reduced, {} probes, {} -> {} records \
             ({} eliminated), {} verified repros\n",
            report.reductions.len(),
            report.stats.probes,
            report.stats.records_before,
            report.stats.records_after,
            report.stats.records_eliminated(),
            verified,
        ));
        for r in &report.reductions {
            out.push_str(&format!(
                "  {:<36} {} {:>4} -> {:<4} records, {:>3} probes, {}\n",
                r.repro_name,
                r.file,
                r.original_records,
                r.reduced_records,
                r.probes,
                if r.verified { "verified" } else { "UNVERIFIED" },
            ));
        }
    }
    if let Some(s) = &report.store_stats {
        out.push_str(&format!(
            "bug store: {} added, {} reused, {} re-verified\n",
            s.added, s.reused, s.refreshed,
        ));
    }
    out
}

/// The bug-store listing: every persisted entry, ordered by key, with its
/// provenance and verification state — the `squality-tables bugs list`
/// surface.
pub fn bug_store_table(entries: &[(u64, squality_bugstore::BugEntry)]) -> String {
    let verified = entries.iter().filter(|(_, e)| e.reproduced).count();
    let tombstones = entries.iter().filter(|(_, e)| e.repro_text.is_empty()).count();
    let mut out = String::from("Bug store. Persisted minimized repros\n");
    out.push_str(&format!(
        "{} entries ({} verified, {} tombstones)\n",
        entries.len(),
        verified,
        tombstones,
    ));
    out.push_str(&format!(
        "{:<17} {:<30} {:<24} {:>4}  {:<10} Signature\n",
        "Key", "Cell", "Stability", "Recs", "State"
    ));
    for (key, e) in entries {
        let state = if e.repro_text.is_empty() {
            "tombstone"
        } else if e.reproduced {
            "verified"
        } else {
            "unverified"
        };
        out.push_str(&format!(
            "{key:016x}  {:<30} {:<24} {:>4}  {:<10} [{}] {}\n",
            crate::replay::cell_of(e).label(),
            e.stability.as_ref().map_or("-".to_string(), |s| s.label()),
            e.records_after,
            state,
            e.signature.statement,
            e.signature.normalized,
        ));
    }
    out
}

/// The replay transition table: one row per replayed entry with its
/// still-failing / fixed / regressed verdict, plus the corpus summary.
/// Deterministic given the store — byte-identical at every worker count
/// (timing is deliberately excluded).
pub fn replay_table(report: &crate::replay::ReplayReport) -> String {
    let mut out = String::from("Regression replay. Bug-store repro corpus\n");
    out.push_str(&format!(
        "{:<17} {:<36} {:<30} {:<14} Signature\n",
        "Key", "Repro", "Cell", "Transition"
    ));
    for e in &report.entries {
        out.push_str(&format!(
            "{:016x}  {:<36} {:<30} {:<14} [{}] {}\n",
            e.key,
            e.repro_name,
            e.cell_label,
            e.status.label(),
            e.signature.statement,
            e.signature.normalized,
        ));
        if let Some(observed) = &e.observed {
            out.push_str(&format!(
                "{:>17} observed instead: [{}] {}\n",
                "", observed.statement, observed.normalized
            ));
        }
    }
    out.push_str(&format!(
        "Replay: {} entries, {} still-failing, {} fixed, {} regressed ({} skipped)\n",
        report.entries.len(),
        report.still_failing(),
        report.fixed(),
        report.regressed(),
        report.skipped,
    ));
    out
}

/// The stability table: every failure cluster and bug finding with its
/// flakiness verdict from the perturbed re-execution arm. Deterministic
/// given the study and [`StabilityConfig`](crate::StabilityConfig) —
/// byte-identical at every analysis worker count.
pub fn stability_table(report: &crate::stability::StabilityReport) -> String {
    let mut out = String::from("Stability. Perturbed re-execution of every failure\n");
    out.push_str(&format!(
        "{} raw failures -> {} clusters + {} bug findings, {} baseline reruns each\n",
        report.total_failures,
        report.clusters.len(),
        report.bugs.len(),
        report.reruns,
    ));
    out.push_str(&format!(
        "{:<5} {:<24} {:<15} {:<7} {:<28} Signature\n",
        "#", "Stability", "Class", "Count", "Cell"
    ));
    for (i, c) in report.clusters.iter().enumerate() {
        out.push_str(&format!(
            "{:<5} {:<24} {:<15} {:<7} {:<28} [{}] {}\n",
            format!("#{i:03}"),
            c.stability.label(),
            c.class_label,
            c.count,
            c.cell,
            c.signature.statement,
            c.signature.normalized,
        ));
    }
    for b in &report.bugs {
        out.push_str(&format!(
            "{:<5} {:<24} {:<15} {:<7} {}:{}\n",
            if b.is_crash { "CRASH" } else { "HANG" },
            b.stability.label(),
            b.host.name(),
            1,
            b.file,
            b.line,
        ));
    }
    out.push_str(&format!(
        "Verdicts: {} stable, {} flaky, {} perturbation-sensitive \
         (non-deterministically reachable: {} of {})\n",
        report.stable_count(),
        report.flaky_count(),
        report.sensitive_count(),
        report.nondeterministic_count(),
        report.total(),
    ));
    out
}

/// Render the full study report (all tables and figures). The stability
/// table appears only when the study ran with
/// [`StudyConfig::stability`](crate::StudyConfig) set.
pub fn full_report(study: &Study) -> String {
    let mut sections = vec![
        table1(study),
        figure1(study),
        table2(study),
        figure2(study),
        table3(study),
        figure3(study),
        table4(study),
        table5(study),
        figure4(study),
        table6(study),
        table7(study),
        table8(study),
        translation_table(study),
        bug_report(study),
    ];
    if let Some(report) = &study.stability {
        sections.push(stability_table(report));
    }
    sections.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_study, StudyConfig};

    fn study() -> Study {
        run_study(StudyConfig::default().with_seed(77).with_scale(0.06))
    }

    #[test]
    fn all_sections_render() {
        let s = study();
        let report = full_report(&s);
        for needle in [
            "Table 1",
            "Figure 1",
            "Table 2",
            "Figure 2",
            "Table 3",
            "Figure 3",
            "Table 4",
            "Table 5",
            "Figure 4",
            "Table 6",
            "Table 7",
            "Table 8",
            "Translation arm",
            "Bug findings",
        ] {
            assert!(report.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn translation_table_reports_rules_and_reduction() {
        let s = study();
        let t = translation_table(&s);
        assert!(t.contains("type names"));
        assert!(t.contains("function renames"));
        assert!(t.contains("Statement executions translated"));
        // Without the arm, the table degrades gracefully.
        let bare = run_study(
            StudyConfig::default().with_seed(77).with_scale(0.04).with_translated_arm(false),
        );
        assert!(translation_table(&bare).contains("translated arm not run"));
    }

    #[test]
    fn table2_has_paper_counts() {
        let s = study();
        let t = table2(&s);
        assert!(t.contains("112"));
        assert!(t.contains("114 (CLI)"));
        assert!(t.contains("16"));
    }

    #[test]
    fn figure4_mentions_paper_values() {
        let s = study();
        let f = figure4(&s);
        assert!(f.contains("[30.51%]"));
        assert!(f.contains("[98.11%]"));
    }
}
