//! The flakiness arm: perturbed re-execution and stability classification.
//!
//! The paper treats every failure as a fixed fact about a suite × host
//! pair, but real harnesses ask a prior question first: *does this
//! failure even reproduce?* A result that appears only under one worker
//! count, one execution strategy, or one fault schedule is a harness
//! finding, not a portability finding, and mixing the two poisons every
//! downstream table. This module answers the question mechanically:
//!
//! 1. **Rerun** — every failing record (and every crash/hang bug
//!    finding) re-executes [`StabilityConfig::reruns`] times under its
//!    original cell configuration. Any divergence across identical runs
//!    is [`Stability::Flaky`] with the observed outcome set.
//! 2. **Perturb** — records that rerun identically are then probed once
//!    per [`PerturbationAxis`]: scheduler worker count, naive-vs-hash
//!    execution strategy, statement-plan cache on/off, the engine fault
//!    profile flipped between paper-versions and all-fixed, and (opt-in,
//!    [`StabilityConfig::fault_schedules`]) a subprocess backend under a
//!    seeded `SQUALITY_CRASH_AFTER`/`SQUALITY_HANG_AFTER` schedule. The
//!    first axis that changes the outcome yields
//!    [`Stability::PerturbationSensitive`].
//! 3. **Classify** — everything else is [`Stability::Stable`]: the
//!    failure reproduces byte-identically under every probe, so it is
//!    safe to cluster, dedupe, reduce, and report as a real
//!    incompatibility.
//!
//! Verdicts are threaded back onto the study in place:
//! [`FailureSignature::stability`] is annotated on every failure (so
//! triage clustering separates a stable cluster from a
//! perturbation-sensitive one with the same message) and
//! [`BugFinding::stability`] on every crash/hang finding. The analysis
//! itself is deterministic — probes are pure harness runs, schedules are
//! seeded, and the worker pool stitches verdicts in target order — so
//! the stability table is byte-identical at every worker count.
//!
//! # Example
//!
//! ```
//! use squality_core::{run_study, StabilityConfig, StudyConfig};
//!
//! let config = StudyConfig::default()
//!     .with_scale(0.04)
//!     .with_seed(7)
//!     .with_stability_arm(StabilityConfig::default().with_reruns(2));
//! let study = run_study(config);
//! let report = study.stability.as_ref().expect("stability arm ran");
//! // Every cluster and every bug finding received a verdict…
//! assert_eq!(report.total(), report.clusters.len() + report.bugs.len());
//! // …and the injected engine faults are exposed as fault-profile
//! // sensitive: they vanish when the profile flips to all-fixed.
//! assert!(report.nondeterministic_count() >= 1);
//! ```
//!
//! [`FailureSignature::stability`]: squality_runner::FailureSignature
//! [`BugFinding::stability`]: crate::experiments::BugFinding

use crate::experiments::Study;
use crate::harness::Harness;
use crate::transplant::{Provision, SuiteRunSummary};
use crate::triage::{cluster_failures, effective_workers, Arm, CellRef};
use squality_backend::BackendSpec;
use squality_corpus::DonorEnvironment;
use squality_engine::{ClientKind, EngineDialect, ExecStrategy, FaultProfile, PlanCache};
use squality_formats::{RecordId, SuiteKind, TestFile};
use squality_runner::{EngineConnector, FailureSignature, Outcome, PerturbationAxis, Stability};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Parameters of the stability arm.
///
/// `#[non_exhaustive]`: start from [`StabilityConfig::default`] and chain
/// the setters you need.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StabilityConfig {
    /// Baseline re-executions per failure before the perturbation probes
    /// run. More reruns buy more confidence in a `Stable`/`Flaky` split;
    /// the probes are single files, so the cost stays proportional to
    /// the number of distinct failure signatures, not raw failures.
    pub reruns: usize,
    /// Seed for the subprocess fault schedules (and any future
    /// randomized probe). The analysis is deterministic given it.
    pub seed: u64,
    /// Worker threads the targets fan out over (`0` = all cores).
    /// Purely a throughput knob: verdicts are stitched in target order,
    /// so the report is byte-identical at every count.
    pub workers: usize,
    /// Also probe the subprocess-backend axis: re-run each target behind
    /// a `squality-backend-worker` process under a seeded
    /// `SQUALITY_CRASH_AFTER`/`SQUALITY_HANG_AFTER` schedule. Off by
    /// default — it spawns one child process per target.
    pub fault_schedules: bool,
    /// Per-statement deadline for the fault-schedule probes. Short by
    /// default so hang-prone records rerun quickly.
    pub backend_deadline: Duration,
}

impl Default for StabilityConfig {
    fn default() -> Self {
        StabilityConfig {
            reruns: 3,
            seed: 0x57AB1E,
            workers: 0,
            fault_schedules: false,
            backend_deadline: Duration::from_millis(250),
        }
    }
}

impl StabilityConfig {
    /// Replace the baseline rerun count.
    pub fn with_reruns(mut self, reruns: usize) -> Self {
        self.reruns = reruns;
        self
    }

    /// Replace the fault-schedule seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the analysis worker count (0 = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enable or disable the subprocess fault-schedule axis.
    pub fn with_fault_schedules(mut self, fault_schedules: bool) -> Self {
        self.fault_schedules = fault_schedules;
        self
    }

    /// Replace the fault-schedule probe deadline.
    pub fn with_backend_deadline(mut self, deadline: Duration) -> Self {
        self.backend_deadline = deadline;
        self
    }
}

/// The cell configuration a stability probe replicates: everything a
/// [`Harness`] needs to re-execute one file the way the original run
/// executed it. Built by `Harness::run` for its own failures and from a
/// triage [`CellRef`] for study clusters.
#[derive(Clone)]
pub(crate) struct ProbeCell<'a> {
    pub(crate) kind: SuiteKind,
    pub(crate) host: EngineDialect,
    pub(crate) client: ClientKind,
    pub(crate) provision: Provision,
    pub(crate) translate: bool,
    pub(crate) faults: FaultProfile,
    pub(crate) env: Option<&'a DonorEnvironment>,
    pub(crate) label: String,
}

/// One record (or incident) under stability analysis.
struct Target<'a> {
    cell: ProbeCell<'a>,
    file: &'a TestFile,
    /// 1-based source line — how crashes and hangs are matched.
    line: usize,
    /// Record id for failure targets; `None` for crash/hang bug targets,
    /// which have no surviving record result to compare against.
    id: Option<RecordId>,
    /// Pre-annotation signature the probe must reproduce for a `"fail"`
    /// reading; `None` accepts any failure at the target record.
    signature: Option<FailureSignature>,
    /// The outcome label of the original observation.
    original: &'static str,
}

/// One probe of the perturbation matrix.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Variation {
    /// The original cell configuration, unchanged (the rerun arm).
    Baseline,
    /// One axis perturbed.
    Axis(PerturbationAxis),
}

/// What one cluster's exemplar resolved to.
#[derive(Debug, Clone)]
pub struct ClusterVerdict {
    /// The cluster's (pre-annotation) signature.
    pub signature: FailureSignature,
    /// Raw failing records the cluster absorbed.
    pub count: usize,
    /// Exemplar cell display label (`"PostgreSQL→sqlite"`-style).
    pub cell: String,
    /// Taxonomy row label, read in the exemplar cell's context.
    pub class_label: &'static str,
    /// Exemplar file name.
    pub file: String,
    pub stability: Stability,
}

/// What one crash/hang bug finding resolved to.
#[derive(Debug, Clone)]
pub struct BugVerdict {
    pub host: EngineDialect,
    pub is_crash: bool,
    /// File and 1-based line of the incident.
    pub file: String,
    pub line: usize,
    pub stability: Stability,
}

/// Everything the stability arm produces over a study.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Baseline reruns each target received.
    pub reruns: usize,
    /// Raw failing records across the whole study (the clusters' total).
    pub total_failures: usize,
    /// One verdict per failure cluster, in cluster order (largest
    /// first, matching [`cluster_failures`]).
    pub clusters: Vec<ClusterVerdict>,
    /// One verdict per deduplicated bug finding, in study order.
    pub bugs: Vec<BugVerdict>,
}

impl StabilityReport {
    /// Every verdict in report order: clusters, then bugs.
    fn verdicts(&self) -> impl Iterator<Item = &Stability> {
        self.clusters.iter().map(|c| &c.stability).chain(self.bugs.iter().map(|b| &b.stability))
    }

    /// Targets analysed (clusters + bug findings).
    pub fn total(&self) -> usize {
        self.clusters.len() + self.bugs.len()
    }

    /// Targets that reproduced identically under every probe.
    pub fn stable_count(&self) -> usize {
        self.verdicts().filter(|s| matches!(s, Stability::Stable)).count()
    }

    /// Targets that diverged across identical baseline reruns.
    pub fn flaky_count(&self) -> usize {
        self.verdicts().filter(|s| matches!(s, Stability::Flaky { .. })).count()
    }

    /// Targets that flipped under exactly one perturbed axis.
    pub fn sensitive_count(&self) -> usize {
        self.verdicts().filter(|s| matches!(s, Stability::PerturbationSensitive { .. })).count()
    }

    /// Flaky + perturbation-sensitive: everything a report must flag as
    /// not deterministically reachable.
    pub fn nondeterministic_count(&self) -> usize {
        self.verdicts().filter(|s| s.is_nondeterministic()).count()
    }
}

/// Run the stability arm over a finished study: cluster every failure,
/// take one exemplar per cluster plus every deduplicated bug finding,
/// and classify each under the rerun + perturbation matrix. Pure
/// analysis — the study is untouched; see [`annotate_study`] for
/// threading the verdicts back.
pub fn stability_report(study: &Study, config: &StabilityConfig) -> StabilityReport {
    let (total_failures, clusters) = cluster_failures(study);

    let mut targets: Vec<Target<'_>> = Vec::new();
    for cluster in &clusters {
        let cell_ref = cluster.exemplar.cell;
        let gs = study.suite(cell_ref.suite);
        let file = gs
            .files
            .iter()
            .find(|f| f.name == cluster.exemplar.file)
            .expect("exemplar file is in its suite");
        targets.push(Target {
            cell: probe_cell_of(cell_ref, &gs.environment),
            file,
            line: cluster.exemplar.id.line as usize,
            id: Some(cluster.exemplar.id),
            signature: Some(strip(&cluster.signature)),
            original: "fail",
        });
    }
    for bug in &study.bugs {
        // Bugs are collected from the verbatim matrix (see
        // `run_study_cached`), so that is the cell the probe replays.
        let cell_ref = CellRef { suite: bug.donor_suite, host: bug.host, arm: Arm::Verbatim };
        let gs = study.suite(bug.donor_suite);
        let file = gs
            .files
            .iter()
            .find(|f| f.name == bug.incident.file)
            .expect("incident file is in its suite");
        targets.push(Target {
            cell: probe_cell_of(cell_ref, &gs.environment),
            file,
            line: bug.incident.line,
            id: None,
            signature: None,
            original: if bug.is_crash { "crash" } else { "hang" },
        });
    }

    let mut verdicts = classify_targets(&targets, config).into_iter();
    let clusters = clusters
        .iter()
        .map(|c| ClusterVerdict {
            signature: strip(&c.signature),
            count: c.count,
            cell: c.exemplar.cell.label(),
            class_label: c.class_label(),
            file: c.exemplar.file.clone(),
            stability: verdicts.next().expect("one verdict per cluster"),
        })
        .collect();
    let bugs = study
        .bugs
        .iter()
        .map(|b| BugVerdict {
            host: b.host,
            is_crash: b.is_crash,
            file: b.incident.file.clone(),
            line: b.incident.line,
            stability: verdicts.next().expect("one verdict per bug"),
        })
        .collect();
    StabilityReport { reruns: config.reruns, total_failures, clusters, bugs }
}

/// Thread a report's verdicts back onto the study: every failure whose
/// signature matches a classified cluster gets
/// `signature.stability = Some(verdict)` — in the donor runs and both
/// matrix arms — and every bug finding gets its verdict. Annotated and
/// pre-annotation signatures are distinct clustering keys by design:
/// `stability` participates in `Eq`/`Hash`.
pub fn annotate_study(study: &mut Study, report: &StabilityReport) {
    let verdicts: HashMap<FailureSignature, Stability> =
        report.clusters.iter().map(|c| (c.signature.clone(), c.stability.clone())).collect();
    let annotate = |summary: &mut SuiteRunSummary| {
        for case in &mut summary.failures {
            if let Outcome::Fail(info) = &mut case.result.outcome {
                if let Some(verdict) = verdicts.get(&info.signature) {
                    info.signature.stability = Some(verdict.clone());
                }
            }
        }
    };
    for run in &mut study.donor_runs {
        annotate(run);
    }
    for cell in &mut study.matrix {
        annotate(&mut cell.summary);
    }
    for cell in &mut study.translated_matrix {
        annotate(&mut cell.summary);
    }
    for (bug, verdict) in study.bugs.iter_mut().zip(&report.bugs) {
        bug.stability = Some(verdict.stability.clone());
    }
}

/// The harness-level entry point: classify every distinct failure
/// signature of one finished run and annotate the summary's failures in
/// place. Called by `Harness::run` when
/// [`stability`](crate::HarnessBuilder::stability) is configured.
pub(crate) fn annotate_summary(
    cell: &ProbeCell<'_>,
    files: &[TestFile],
    summary: &mut SuiteRunSummary,
    config: &StabilityConfig,
) {
    let mut targets: Vec<Target<'_>> = Vec::new();
    let mut seen: HashMap<FailureSignature, usize> = HashMap::new();
    for case in &summary.failures {
        let Outcome::Fail(info) = &case.result.outcome else { continue };
        if seen.contains_key(&info.signature) {
            continue;
        }
        // The failing file is always among the run's own files; skipping a
        // (impossible) miss beats poisoning the whole annotation pass.
        let Some(file) = files.iter().find(|f| f.name == case.file) else { continue };
        seen.insert(info.signature.clone(), targets.len());
        targets.push(Target {
            cell: cell.clone(),
            file,
            line: case.id.line as usize,
            id: Some(case.id),
            signature: Some(info.signature.clone()),
            original: "fail",
        });
    }
    let verdicts = classify_targets(&targets, config);
    for case in &mut summary.failures {
        if let Outcome::Fail(info) = &mut case.result.outcome {
            if let Some(&at) = seen.get(&info.signature) {
                info.signature.stability = Some(verdicts[at].clone());
            }
        }
    }
}

/// Classify every target over a worker pool. Verdicts come back in
/// target order regardless of worker count: each worker claims the next
/// index and writes its own slot, exactly the triage reducer's stitching
/// discipline.
fn classify_targets(targets: &[Target<'_>], config: &StabilityConfig) -> Vec<Stability> {
    if targets.is_empty() {
        return Vec::new();
    }
    let workers = effective_workers(config.workers, targets.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Stability>>> = targets.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(target) = targets.get(i) else { break };
                let verdict = classify_target(target, i, config);
                *slots[i].lock().expect("stability slot poisoned") = Some(verdict);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("stability slot poisoned").expect("every slot is filled"))
        .collect()
}

/// The rerun + perturbation matrix for one target. Baseline reruns come
/// first — any divergence is flakiness and the axes are not consulted —
/// then each axis in [`PerturbationAxis::ALL`] order, first flip wins.
fn classify_target(target: &Target<'_>, index: usize, config: &StabilityConfig) -> Stability {
    let mut observed: Vec<&'static str> = vec![target.original];
    for _ in 0..config.reruns {
        observed.push(probe(target, Variation::Baseline, index, config));
    }
    let mut distinct = observed;
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() > 1 {
        return Stability::Flaky {
            observed_outcomes: distinct.into_iter().map(String::from).collect(),
        };
    }
    for axis in PerturbationAxis::ALL {
        if axis == PerturbationAxis::BackendSchedule && !config.fault_schedules {
            continue;
        }
        if probe(target, Variation::Axis(axis), index, config) != target.original {
            return Stability::PerturbationSensitive { axis };
        }
    }
    Stability::Stable
}

/// Execute one probe: the target's file under its cell configuration
/// with at most one knob perturbed, read back as an outcome label.
fn probe(
    target: &Target<'_>,
    variation: Variation,
    index: usize,
    config: &StabilityConfig,
) -> &'static str {
    let cell = &target.cell;
    let faults = if variation == Variation::Axis(PerturbationAxis::FaultProfile) {
        flip_faults(cell.faults)
    } else {
        cell.faults
    };
    let files = std::slice::from_ref(target.file);
    let mut builder = Harness::builder()
        .files(cell.kind, files)
        .host(cell.host)
        .client(cell.client)
        .provision(cell.provision)
        .translate(cell.translate)
        .faults(faults)
        .label(format!("stability {} {}", cell.label, target.file.name));
    if let Some(env) = cell.env {
        builder = builder.environment(env);
    }
    let summary = match variation {
        Variation::Axis(PerturbationAxis::Workers) => {
            // Through the parallel scheduler — the determinism contract's
            // own axis. (A single file clamps to one worker; the probe
            // still exercises the scheduler path vs `run_on`.)
            builder.workers(2).build().expect("files are always set").run().summary
        }
        Variation::Axis(PerturbationAxis::BackendSchedule) => {
            // Behind a worker process under a seeded crash/hang schedule.
            // Both hooks are always set — the unused one to 0, which the
            // worker can never reach — so parent-process hooks are
            // overridden rather than inherited.
            let (crash, after) = seeded_schedule(config.seed, index);
            let (crash_after, hang_after) = if crash { (after, 0) } else { (0, after) };
            builder
                .backend(
                    BackendSpec::subprocess()
                        .with_deadline(config.backend_deadline)
                        .with_max_restarts(1),
                )
                .backend_env("SQUALITY_CRASH_AFTER", crash_after.to_string())
                .backend_env("SQUALITY_HANG_AFTER", hang_after.to_string())
                .build()
                .expect("files are always set")
                .run()
                .summary
        }
        // Baseline and the remaining axes run on one in-process
        // connection, like a triage probe. The connection is minted with
        // the probe's fault profile — `run_on` executes on the caller's
        // engine, so the profile must be set here, not on the builder.
        _ => {
            let mut conn = EngineConnector::with_faults(cell.host, cell.client, faults);
            if variation == Variation::Axis(PerturbationAxis::ExecStrategy) {
                conn.set_exec_strategy(ExecStrategy::Naive);
            }
            if variation == Variation::Axis(PerturbationAxis::PlanCache) {
                // The original cells run cache-less connections per probe;
                // the perturbation is attaching one.
                conn.set_plan_cache(PlanCache::shared());
            }
            builder.build().expect("files are always set").run_on(&mut conn)
        }
    };
    observe(&summary, target)
}

/// Read a probe summary back as the target's outcome label: `"fail"`
/// (same record, same signature), `"fail-other"` (same record, different
/// signature), `"crash"`, `"hang"`, or `"pass"`.
fn observe(summary: &SuiteRunSummary, target: &Target<'_>) -> &'static str {
    if let Some(id) = target.id {
        if let Some(case) = summary.failures.iter().find(|f| f.id == id) {
            let Outcome::Fail(info) = &case.result.outcome else { return "fail-other" };
            return match &target.signature {
                Some(want) if info.signature == *want => "fail",
                Some(_) => "fail-other",
                None => "fail",
            };
        }
    } else if summary.failures.iter().any(|f| f.id.line as usize == target.line) {
        // Bug targets have no record id: an ordinary failure at the
        // incident line means the crash/hang degraded to a plain failure.
        return "fail";
    }
    if summary.crashes.iter().any(|c| c.line == target.line) {
        "crash"
    } else if summary.hangs.iter().any(|h| h.line == target.line) {
        "hang"
    } else {
        "pass"
    }
}

/// Build a probe cell from a triage cell reference: the study's
/// execution configuration for that cell, with the suite's recorded
/// environment.
fn probe_cell_of(cell_ref: CellRef, env: &DonorEnvironment) -> ProbeCell<'_> {
    let (client, provision, translate) = cell_ref.exec();
    ProbeCell {
        kind: cell_ref.suite,
        host: cell_ref.host,
        client,
        provision,
        translate,
        // Study cells run the default (paper-versions) profile.
        faults: FaultProfile::default(),
        env: Some(env),
        label: cell_ref.label(),
    }
}

/// The fault-profile axis: paper-versions ↔ all-fixed. An
/// injected-fault finding vanishes under the flip — that is exactly the
/// "not deterministically reachable on a fixed engine" reading.
fn flip_faults(faults: FaultProfile) -> FaultProfile {
    if faults == FaultProfile::all_fixed() {
        FaultProfile::default()
    } else {
        FaultProfile::all_fixed()
    }
}

fn lcg(state: u64) -> u64 {
    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Seeded per-target schedule for the backend axis: crash or hang (by
/// parity) after 1–6 statements. Deterministic in (seed, target index).
fn seeded_schedule(seed: u64, index: usize) -> (bool, u64) {
    let s = lcg(lcg(seed ^ index as u64));
    (s & 1 == 0, 1 + (s >> 33) % 6)
}

/// A signature with the stability annotation removed — the form every
/// probe observes, and the clustering key verdicts are filed under.
fn strip(signature: &FailureSignature) -> FailureSignature {
    let mut stripped = signature.clone();
    stripped.stability = None;
    stripped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_study, StudyConfig};

    fn stable_study() -> Study {
        run_study(
            StudyConfig::default()
                .with_seed(21)
                .with_scale(0.06)
                .with_stability_arm(StabilityConfig::default().with_reruns(2)),
        )
    }

    #[test]
    fn every_target_is_classified_and_faults_read_sensitive() {
        let s = stable_study();
        let report = s.stability.as_ref().expect("stability arm ran");
        assert!(report.total_failures > 0);
        assert!(!report.clusters.is_empty());
        assert!(!report.bugs.is_empty());
        assert_eq!(
            report.stable_count() + report.flaky_count() + report.sensitive_count(),
            report.total(),
            "every cluster and bug must receive a verdict"
        );
        // Crash findings only exist as injected engine faults, and those
        // vanish when the profile flips to all-fixed: every crash must
        // read fault-profile sensitive. (Hangs may also be emergent —
        // the step-budget guard converting a genuinely looping query —
        // and those correctly read stable: they reproduce everywhere.)
        let sensitive = Stability::PerturbationSensitive { axis: PerturbationAxis::FaultProfile };
        for bug in report.bugs.iter().filter(|b| b.is_crash) {
            assert_eq!(
                bug.stability, sensitive,
                "crash at {}:{} misclassified",
                bug.file, bug.line
            );
        }
        assert!(
            report
                .bugs
                .iter()
                .all(|b| b.stability == sensitive || b.stability == Stability::Stable),
            "unexpected bug verdicts: {:?}",
            report.bugs
        );
        assert!(report.nondeterministic_count() >= 1);
        // The simulated engines are deterministic, so the ordinary
        // incompatibility clusters must read stable.
        assert!(report.stable_count() >= 1, "no stable cluster at all");
    }

    #[test]
    fn verdicts_are_threaded_onto_the_study() {
        let s = stable_study();
        let report = s.stability.as_ref().expect("stability arm ran");
        // Every bug finding carries its verdict.
        for bug in &s.bugs {
            assert!(bug.stability.is_some(), "unannotated bug: {bug:?}");
        }
        // Every matrix failure whose signature was classified carries it.
        let mut annotated = 0usize;
        for cell in &s.matrix {
            for case in &cell.summary.failures {
                if let Outcome::Fail(info) = &case.result.outcome {
                    if info.signature.stability.is_some() {
                        annotated += 1;
                    }
                }
            }
        }
        assert!(annotated > 0, "no annotated matrix failure");
        // A stable-classified cluster signature round-trips: stripping
        // the annotation recovers the clustering key.
        let stable = report
            .clusters
            .iter()
            .find(|c| c.stability == Stability::Stable)
            .expect("a stable cluster");
        assert_eq!(strip(&stable.signature), stable.signature);
    }

    #[test]
    fn stability_table_is_deterministic_across_worker_counts() {
        let study = run_study(StudyConfig::default().with_seed(21).with_scale(0.05));
        let run = |workers: usize| {
            stability_report(
                &study,
                &StabilityConfig::default().with_reruns(2).with_workers(workers),
            )
        };
        let base = run(1);
        let base_table = crate::report::stability_table(&base);
        assert!(base_table.contains("non-deterministically reachable"), "{base_table}");
        for workers in [2, 8] {
            let got = run(workers);
            assert_eq!(got.clusters.len(), base.clusters.len(), "workers={workers}");
            for (a, b) in base.clusters.iter().zip(got.clusters.iter()) {
                assert_eq!(a.signature, b.signature, "workers={workers}");
                assert_eq!(a.stability, b.stability, "workers={workers}");
            }
            for (a, b) in base.bugs.iter().zip(got.bugs.iter()) {
                assert_eq!(a.stability, b.stability, "workers={workers}");
            }
            assert_eq!(crate::report::stability_table(&got), base_table, "workers={workers}");
        }
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_varied() {
        let a: Vec<(bool, u64)> = (0..16).map(|i| seeded_schedule(0x57AB1E, i)).collect();
        let b: Vec<(bool, u64)> = (0..16).map(|i| seeded_schedule(0x57AB1E, i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|(crash, _)| *crash));
        assert!(a.iter().any(|(crash, _)| !*crash));
        assert!(a.iter().all(|(_, after)| (1..=6).contains(after)));
        // A different seed reshuffles.
        let c: Vec<(bool, u64)> = (0..16).map(|i| seeded_schedule(7, i)).collect();
        assert_ne!(a, c);
    }
}
