//! The full empirical study: every experiment from the paper's evaluation,
//! orchestrated over the generated corpora and the four engine simulators.

use crate::cache::{CacheStats, ResultCache};
use crate::harness::{Harness, HarnessBuilder, Run};
use crate::stability::{StabilityConfig, StabilityReport};
use crate::transplant::{sample_failures, Incident, Provision, SuiteRunSummary};
use squality_backend::{BackendFaultBreakdown, BackendSpec};
use squality_corpus::{donor_dialect, generate_suite_scaled, GeneratedSuite};
use squality_engine::{ClientKind, Coverage, EngineDialect, PlanCache, PlanCacheStats};
use squality_formats::SuiteKind;
use squality_runner::{
    normalize_error, DependencyClass, IncompatibilityClass, Outcome, ReuseDifficulty, RunObserver,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Study parameters.
///
/// `#[non_exhaustive]`: future knobs can land without breaking callers.
/// Outside this crate, start from [`StudyConfig::default`] and chain the
/// setters you need:
///
/// ```
/// use squality_core::StudyConfig;
///
/// let config = StudyConfig::default().with_scale(0.05).with_workers(2);
/// assert_eq!(config.workers, 2);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct StudyConfig {
    /// Corpus generation seed (the study is deterministic given it).
    pub seed: u64,
    /// Corpus scale: 1.0 reproduces the default sizes, benches use less.
    pub scale: f64,
    /// Worker threads per suite × host cell.
    ///
    /// `0` means "all cores": the scheduler resolves it to the machine's
    /// available parallelism (falling back to 1 when that cannot be
    /// queried). Whatever is requested is then clamped to the cell's file
    /// count — extra workers beyond the number of files would never claim
    /// a file, so `workers > files` behaves exactly like `workers ==
    /// files`, and an empty suite resolves to a single idle worker. The
    /// study's results are byte-identical for every worker count; this is
    /// purely a throughput knob.
    pub workers: usize,
    /// Also run the **translated arm** of the suite × host matrix: every
    /// cell re-executed with cross-dialect statement translation enabled,
    /// populating [`Study::translated_matrix`] (the reproduction's
    /// analogue of the paper's "what if we adapt the statements?"
    /// discussion).
    pub translated_arm: bool,
    /// Where the study's cells execute. [`BackendSpec::InProcess`]
    /// (default) keeps the engine in the harness process —
    /// byte-identical results to every prior release.
    /// [`BackendSpec::Subprocess`] puts every worker connection behind a
    /// `squality-backend-worker` child process; the coverage experiment
    /// always runs in-process, since line coverage is engine
    /// instrumentation read from the harness side.
    pub backend: BackendSpec,
    /// Also run the **stability arm**: after the matrix, re-execute one
    /// exemplar per failure cluster (and every bug finding) under the
    /// perturbation matrix of [`crate::stability`], classifying each as
    /// stable, flaky, or perturbation-sensitive, and annotate the
    /// study's failures and bugs with the verdicts. `None` (default)
    /// skips the arm; results elsewhere are byte-identical either way.
    pub stability: Option<StabilityConfig>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x5C0A11,
            scale: 1.0,
            workers: 0,
            translated_arm: true,
            backend: BackendSpec::InProcess,
            stability: None,
        }
    }
}

impl StudyConfig {
    /// Replace the corpus-generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the corpus scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Replace the per-cell worker count (0 = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enable or disable the translated arm.
    pub fn with_translated_arm(mut self, translated_arm: bool) -> Self {
        self.translated_arm = translated_arm;
        self
    }

    /// Replace the execution backend.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Enable the stability arm with the given configuration.
    pub fn with_stability_arm(mut self, stability: StabilityConfig) -> Self {
        self.stability = Some(stability);
        self
    }

    /// A compact provenance fingerprint of everything that determines
    /// this study's corpus and outcomes: seed, scale, arms, backend, and
    /// the engine semantics version. Bug-store entries record the
    /// fingerprints of the studies that first/last observed them; worker
    /// count is deliberately absent (determinism contract).
    pub fn fingerprint(&self) -> String {
        let mut h = squality_formats::ContentHasher::new();
        h.write_str("squality-study");
        h.write_u64(self.seed);
        h.write_u64(self.scale.to_bits());
        h.write_tag(self.translated_arm as u8);
        h.write_str(self.backend.tag());
        h.write_tag(self.stability.is_some() as u8);
        h.write_u64(squality_engine::ENGINE_SEMANTICS_VERSION as u64);
        format!("{:016x}", h.finish())
    }
}

/// The three executed suites (MySQL's is censused but not executed, like
/// the paper).
pub const EXECUTED_SUITES: [SuiteKind; 3] =
    [SuiteKind::Slt, SuiteKind::PgRegress, SuiteKind::Duckdb];

/// One cell of the Figure 4 heatmap.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    pub suite: SuiteKind,
    pub host: EngineDialect,
    pub summary: SuiteRunSummary,
}

/// Table 8 rows: coverage of one engine under two test regimes.
#[derive(Debug, Clone, Copy)]
pub struct CoverageRow {
    pub engine: EngineDialect,
    pub original_line: f64,
    pub original_branch: f64,
    pub squality_line: f64,
    pub squality_branch: f64,
}

/// A deduplicated crash/hang finding (paper §6).
#[derive(Debug, Clone)]
pub struct BugFinding {
    pub host: EngineDialect,
    pub donor_suite: SuiteKind,
    pub is_crash: bool,
    pub incident: Incident,
    /// The stability arm's verdict for this finding; `None` until a
    /// study with [`StudyConfig::stability`] classifies it.
    pub stability: Option<squality_runner::Stability>,
}

/// Everything the report renderer needs.
pub struct Study {
    pub config: StudyConfig,
    pub suites: Vec<GeneratedSuite>,
    /// Donor-on-donor runs in a bare environment (Tables 4–5).
    pub donor_runs: Vec<SuiteRunSummary>,
    /// Suite × host matrix (Figure 4, Tables 6–7). Diagonal runs use the
    /// full donor environment, off-diagonal the cross-host provision.
    pub matrix: Vec<MatrixCell>,
    /// The translated arm: the same 12 cells re-run with statement
    /// translation enabled (empty when `config.translated_arm` is false).
    pub translated_matrix: Vec<MatrixCell>,
    /// Coverage comparison (Table 8).
    pub coverage: Vec<CoverageRow>,
    /// Crashes and hangs discovered across all runs (§6).
    pub bugs: Vec<BugFinding>,
    /// Statement-plan cache counters for the whole study: how much parse
    /// work the shared cache absorbed across cells, files, and workers.
    pub parse_cache: PlanCacheStats,
    /// Result-cache counters for the whole study (all zero when the study
    /// ran without a cache): how many per-file executions were replayed
    /// from disk instead of re-run.
    pub result_cache: CacheStats,
    /// Backend fault counters summed over every cell (all zero when the
    /// study ran in-process): worker crashes, deadline kills, protocol
    /// errors, and the restarts that contained them.
    pub backend_faults: BackendFaultBreakdown,
    /// The stability arm's report (`None` unless
    /// [`StudyConfig::stability`] was set). When present, every failure
    /// signature and bug finding in the study also carries its verdict.
    pub stability: Option<StabilityReport>,
}

impl Study {
    /// The generated suite for a kind.
    pub fn suite(&self, kind: SuiteKind) -> &GeneratedSuite {
        self.suites.iter().find(|s| s.suite == kind).expect("suite generated")
    }

    /// Matrix cell lookup.
    pub fn cell(&self, suite: SuiteKind, host: EngineDialect) -> &MatrixCell {
        self.matrix.iter().find(|c| c.suite == suite && c.host == host).expect("matrix cell")
    }

    /// Translated-arm cell lookup (None when the arm was not run).
    pub fn translated_cell(&self, suite: SuiteKind, host: EngineDialect) -> Option<&MatrixCell> {
        self.translated_matrix.iter().find(|c| c.suite == suite && c.host == host)
    }

    /// Study-wide translation counters, aggregated over the translated arm.
    pub fn translation_counts(&self) -> squality_runner::TranslationCounts {
        let mut total = squality_runner::TranslationCounts::default();
        for cell in &self.translated_matrix {
            total.merge(&cell.summary.translation);
        }
        total
    }

    /// The donor-on-donor bare run for a suite.
    pub fn donor_run(&self, suite: SuiteKind) -> &SuiteRunSummary {
        self.donor_runs.iter().find(|s| s.suite == suite).expect("donor run")
    }
}

/// A pre-configured [`HarnessBuilder`] for one study cell: the shared
/// worker count, study-wide plan cache, optional study-wide result
/// cache, and observer set applied.
fn cell_builder<'a>(
    gs: &'a GeneratedSuite,
    workers: usize,
    backend: &BackendSpec,
    plan_cache: &Arc<PlanCache>,
    result_cache: Option<&Arc<ResultCache>>,
    observers: &[&'a dyn RunObserver],
) -> HarnessBuilder<'a> {
    let mut builder = Harness::builder()
        .suite(gs)
        .workers(workers)
        .backend(backend.clone())
        .plan_cache(Arc::clone(plan_cache));
    if let Some(cache) = result_cache {
        builder = builder.result_cache(Arc::clone(cache));
    }
    for obs in observers {
        builder = builder.observer(*obs);
    }
    builder
}

/// Run the full study.
///
/// Every suite × host cell executes through a [`Harness`]: the study is
/// [`run_study_with_observers`] with no observers attached.
pub fn run_study(config: StudyConfig) -> Study {
    run_study_with_observers(config, &[])
}

/// Run the full study, streaming every cell's [`RunEvent`] stream — donor
/// validation, both matrix arms, and the coverage runs, in their fixed
/// execution order — to the given observers (e.g. a
/// [`JsonlObserver`](squality_runner::JsonlObserver) for a
/// machine-readable run log, a
/// [`ProgressObserver`](squality_runner::ProgressObserver) for the CLI).
///
/// Every cell executes through the parallel scheduler: `config.workers`
/// connections per cell share one statement-plan cache, so a statement
/// text parses once for the whole study no matter how many cells, files,
/// or loop iterations replay it. Observers never change results — the
/// study is byte-identical with or without them, at any worker count.
///
/// [`RunEvent`]: squality_runner::RunEvent
pub fn run_study_with_observers(config: StudyConfig, observers: &[&dyn RunObserver]) -> Study {
    run_study_cached(config, observers, None)
}

/// [`run_study_with_observers`] with an optional content-addressed result
/// cache shared across every cell: files already cached under the same
/// (configuration, content) key replay from disk instead of executing, so
/// a repeated study is near-instant and an incremental one only re-runs
/// what changed. Results, reports, event logs, and coverage rows are
/// byte-identical with or without the cache, warm or cold.
pub fn run_study_cached(
    config: StudyConfig,
    observers: &[&dyn RunObserver],
    result_cache: Option<Arc<ResultCache>>,
) -> Study {
    let result_cache = result_cache.as_ref();
    // 1. Generate all four corpora (MySQL included for RQ1/Table 1-2).
    let suites: Vec<GeneratedSuite> = SuiteKind::ALL
        .iter()
        .map(|s| generate_suite_scaled(*s, config.seed, config.scale))
        .collect();

    let executed: Vec<&GeneratedSuite> = EXECUTED_SUITES
        .iter()
        .map(|k| suites.iter().find(|s| s.suite == *k).expect("generated"))
        .collect();

    let plan_cache = PlanCache::shared();
    let workers = config.workers;

    // 2. Donor validation in a bare environment (Tables 4–5).
    let mut backend_faults = BackendFaultBreakdown::default();
    let mut donor_runs: Vec<SuiteRunSummary> = Vec::with_capacity(executed.len());
    for gs in &executed {
        let run = cell_builder(gs, workers, &config.backend, &plan_cache, result_cache, observers)
            .label(format!("donor {} (bare)", gs.suite.donor_name()))
            .host(donor_dialect(gs.suite))
            .client(ClientKind::Connector)
            .provision(Provision::Bare)
            .build()
            .expect("suite is always set")
            .run();
        if let Some(faults) = &run.backend_faults {
            backend_faults.merge(faults);
        }
        donor_runs.push(run.summary);
    }

    // 3. The cross-DBMS matrix (Figure 4 / Tables 6–7). The diagonal runs
    // the donor suite as its own framework would — full environment and the
    // original client — which is why Figure 4's diagonal reads 100% even
    // though Table 4 reports donor failures under the unified runner.
    let run_arm =
        |translate: bool, backend_faults: &mut BackendFaultBreakdown| -> Vec<MatrixCell> {
            let mut cells = Vec::new();
            for gs in &executed {
                for host in EngineDialect::ALL {
                    let is_donor = host == donor_dialect(gs.suite);
                    let run = cell_builder(
                        gs,
                        workers,
                        &config.backend,
                        &plan_cache,
                        result_cache,
                        observers,
                    )
                    .host(host)
                    .client(if is_donor { ClientKind::Cli } else { ClientKind::Connector })
                    .provision(if is_donor { Provision::Full } else { Provision::CrossHost })
                    .translate(translate)
                    .build()
                    .expect("suite is always set")
                    .run();
                    if let Some(faults) = &run.backend_faults {
                        backend_faults.merge(faults);
                    }
                    cells.push(MatrixCell { suite: gs.suite, host, summary: run.summary });
                }
            }
            cells
        };
    let matrix = run_arm(false, &mut backend_faults);

    // 3b. The translated arm: the same 12 cells with cross-dialect
    // statement translation. Translated text is just another key in the
    // shared plan cache, so the arm reuses the study-wide cache too.
    let translated_matrix =
        if config.translated_arm { run_arm(true, &mut backend_faults) } else { Vec::new() };

    // 4. Coverage experiment (Table 8) on the three engines with own suites.
    let coverage = coverage_experiment(&executed, workers, &plan_cache, result_cache, observers);

    // 5. Collect crash/hang findings across all runs (§6).
    let mut bugs = Vec::new();
    for cell in &matrix {
        for inc in &cell.summary.crashes {
            bugs.push(BugFinding {
                host: cell.host,
                donor_suite: cell.suite,
                is_crash: true,
                incident: inc.clone(),
                stability: None,
            });
        }
        for inc in &cell.summary.hangs {
            bugs.push(BugFinding {
                host: cell.host,
                donor_suite: cell.suite,
                is_crash: false,
                incident: inc.clone(),
                stability: None,
            });
        }
    }
    dedupe_bugs(&mut bugs);

    let parse_cache = plan_cache.stats();
    let result_cache = result_cache.map(|c| c.stats()).unwrap_or_default();
    let stability_config = config.stability.clone();
    let mut study = Study {
        config,
        suites,
        donor_runs,
        matrix,
        translated_matrix,
        coverage,
        bugs,
        parse_cache,
        result_cache,
        backend_faults,
        stability: None,
    };

    // 6. The stability arm: classify one exemplar per failure cluster and
    // every bug finding under the perturbation matrix, then thread the
    // verdicts back onto the study's failures and bugs. Probes always
    // execute live — never through the result cache — so a warm cached
    // study can never replay stale verdicts.
    if let Some(stability_config) = stability_config {
        let report = crate::stability::stability_report(&study, &stability_config);
        crate::stability::annotate_study(&mut study, &report);
        study.stability = Some(report);
    }
    study
}

/// Keep one finding per (host, error-signature, stability verdict). The
/// signature is the message under the same normalization the failure
/// taxonomy uses ([`normalize_error`]): digits, quoted literals, and
/// paths abstract away, so the same crash triggered from two generated
/// files counts once, while distinct bugs sharing an "INTERNAL Error"
/// prefix (the paper notes that prefix marks DuckDB bugs) stay separate.
/// The stability label participates so an annotated finding never merges
/// with an unannotated (or differently-classified) one — inside a study
/// this is vacuous, since dedup runs before the stability arm.
fn dedupe_bugs(bugs: &mut Vec<BugFinding>) {
    let mut seen: Vec<(EngineDialect, String, Option<String>)> = Vec::new();
    bugs.retain(|b| {
        let key =
            (b.host, normalize_error(&b.incident.message), b.stability.as_ref().map(|s| s.label()));
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

/// Table 8: each engine's coverage under its original suite vs under the
/// unified SQuaLity corpus (all three suites).
///
/// Runs through the scheduler like every other cell; per-worker coverage
/// recorders are unioned afterwards, which equals what a single sequential
/// connection would have accumulated (feature coverage is a monotone hit
/// set).
fn coverage_experiment(
    executed: &[&GeneratedSuite],
    workers: usize,
    plan_cache: &Arc<PlanCache>,
    result_cache: Option<&Arc<ResultCache>>,
    observers: &[&dyn RunObserver],
) -> Vec<CoverageRow> {
    let engines = [EngineDialect::Sqlite, EngineDialect::Duckdb, EngineDialect::Postgres];
    let mut rows = Vec::new();
    for engine in engines {
        let run_and_merge = |gs: &GeneratedSuite, cov: &mut Coverage| {
            let provision = if donor_dialect(gs.suite) == engine {
                Provision::Full
            } else {
                Provision::CrossHost
            };
            // Always in-process: line coverage is engine instrumentation
            // read from the harness side of the process boundary.
            let Run { connectors, replayed_coverage, .. } = cell_builder(
                gs,
                workers,
                &BackendSpec::InProcess,
                plan_cache,
                result_cache,
                observers,
            )
            .label(format!("coverage {}@{}", gs.suite.donor_name(), engine.name()))
            .host(engine)
            .provision(provision)
            .build()
            .expect("suite is always set")
            .run();
            // Live workers carry coverage on their engines; cache hits
            // carry it in the rehydrated recorder. Their union equals a
            // fully-live run's (coverage is a monotone hit set).
            for conn in &connectors {
                cov.union_with(conn.engine().coverage());
            }
            cov.union_with(&replayed_coverage);
        };

        // Original: the engine's own suite only.
        let own = executed.iter().find(|gs| donor_dialect(gs.suite) == engine).expect("own suite");
        let mut original = Coverage::new();
        run_and_merge(own, &mut original);

        // SQuaLity: the union of all three suites.
        let mut unified = Coverage::new();
        for gs in executed {
            run_and_merge(gs, &mut unified);
        }
        rows.push(CoverageRow {
            engine,
            original_line: original.line_ratio(),
            original_branch: original.branch_ratio(),
            squality_line: unified.line_ratio(),
            squality_branch: unified.branch_ratio(),
        });
    }
    rows
}

/// Table 5: classify a 100-case sample of a donor run's failures.
///
/// The class is read off each failure's precomputed
/// [`FailureSignature`](squality_runner::FailureSignature) — the ad-hoc
/// per-table string matching this helper once carried lives (once) in
/// signature construction now.
pub fn dependency_breakdown(
    summary: &SuiteRunSummary,
    seed: u64,
) -> BTreeMap<DependencyClass, usize> {
    let sample = sample_failures(&summary.failures, 100, seed);
    let mut counts = BTreeMap::new();
    for case in sample {
        if let Outcome::Fail(info) = &case.result.outcome {
            *counts.entry(info.signature.dependency).or_insert(0) += 1;
        }
    }
    counts
}

/// Table 6: classify cross-host failures off the precomputed signature.
/// SLT cells are analysed exhaustively (the paper does the same); others
/// use 100-case samples.
pub fn incompatibility_breakdown(
    cell: &MatrixCell,
    seed: u64,
) -> BTreeMap<IncompatibilityClass, usize> {
    let exhaustive = cell.suite == SuiteKind::Slt;
    let take = if exhaustive { usize::MAX } else { 100 };
    let sample =
        sample_failures(&cell.summary.failures, take.min(cell.summary.failures.len()), seed);
    let mut counts = BTreeMap::new();
    for case in sample {
        if let Outcome::Fail(info) = &case.result.outcome {
            *counts.entry(info.signature.incompatibility).or_insert(0) += 1;
        }
    }
    counts
}

/// Table 7: difficulty-bucket percentages over all cross-host failures of a
/// suite, derived from the precomputed signature classes.
pub fn difficulty_summary(study: &Study, suite: SuiteKind) -> BTreeMap<ReuseDifficulty, f64> {
    let mut counts: BTreeMap<ReuseDifficulty, usize> = BTreeMap::new();
    let mut total = 0usize;
    for cell in &study.matrix {
        if cell.suite != suite || cell.host == donor_dialect(suite) {
            continue;
        }
        for case in &cell.summary.failures {
            if let Outcome::Fail(info) = &case.result.outcome {
                let class = ReuseDifficulty::from_class(info.signature.incompatibility);
                *counts.entry(class).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    let mut out = BTreeMap::new();
    for d in ReuseDifficulty::ALL {
        out.insert(d, *counts.get(&d).unwrap_or(&0) as f64 / total.max(1) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> Study {
        run_study(StudyConfig::default().with_seed(21).with_scale(0.08))
    }

    #[test]
    fn study_shape() {
        let s = small_study();
        assert_eq!(s.suites.len(), 4);
        assert_eq!(s.donor_runs.len(), 3);
        assert_eq!(s.matrix.len(), 12); // 3 suites × 4 hosts
        assert_eq!(s.translated_matrix.len(), 12);
        assert_eq!(s.coverage.len(), 3);
    }

    #[test]
    fn translated_arm_never_adds_syntax_errors_and_fixes_some() {
        let s = small_study();
        let mut verbatim_total = 0usize;
        let mut translated_total = 0usize;
        for suite in EXECUTED_SUITES {
            for host in EngineDialect::ALL {
                let v = s.cell(suite, host).summary.syntax_failures();
                let t = s.translated_cell(suite, host).expect("arm ran").summary.syntax_failures();
                assert!(t <= v, "{suite:?} on {host}: translation added syntax errors {v} -> {t}");
                verbatim_total += v;
                translated_total += t;
            }
        }
        assert!(
            translated_total < verbatim_total,
            "translation must strictly reduce syntax errors: {verbatim_total} -> {translated_total}"
        );
        // The cells where the rules demonstrably bite: PostgreSQL and
        // DuckDB donors carry `::` casts onto hosts that reject them.
        for (suite, host) in [
            (SuiteKind::PgRegress, EngineDialect::Sqlite),
            (SuiteKind::PgRegress, EngineDialect::Mysql),
            (SuiteKind::Duckdb, EngineDialect::Sqlite),
            (SuiteKind::Duckdb, EngineDialect::Mysql),
        ] {
            let v = s.cell(suite, host).summary.syntax_failures();
            let t = s.translated_cell(suite, host).unwrap().summary.syntax_failures();
            assert!(v > 0, "{suite:?} on {host}: expected verbatim syntax failures");
            assert!(t < v, "{suite:?} on {host}: {v} -> {t} not a strict reduction");
        }
    }

    #[test]
    fn translated_arm_diagonal_matches_verbatim() {
        let s = small_study();
        for suite in EXECUTED_SUITES {
            let donor = donor_dialect(suite);
            let v = &s.cell(suite, donor).summary;
            let t = &s.translated_cell(suite, donor).unwrap().summary;
            assert_eq!(v.passed, t.passed, "{suite:?} diagonal changed under translation");
            assert_eq!(v.failed, t.failed);
            // Identity: nothing was rewritten on the donor's own engine.
            assert_eq!(t.translation.applied_total(), 0);
        }
    }

    #[test]
    fn translation_counters_are_consistent() {
        let s = small_study();
        let total = s.translation_counts();
        assert!(total.applied_total() > 0, "study-wide counters empty: {total:?}");
        // The study-wide snapshot is exactly the sum of the per-cell ones.
        let mut applied_sum = 0u64;
        for cell in &s.translated_matrix {
            applied_sum += cell.summary.translation.applied_total();
        }
        assert_eq!(total.applied_total(), applied_sum);
        // Verbatim cells never count anything.
        assert!(s.matrix.iter().all(|c| c.summary.translation.applied_total() == 0));
    }

    #[test]
    fn figure4_shape_holds() {
        let s = small_study();
        // Diagonal ≈ 100%.
        for suite in EXECUTED_SUITES {
            let donor = donor_dialect(suite);
            let diag = s.cell(suite, donor).summary.success_rate();
            assert!(diag > 0.99, "{suite:?} diagonal {diag}");
        }
        // SLT transfers best (paper: >98% on every host).
        for host in EngineDialect::ALL {
            let r = s.cell(SuiteKind::Slt, host).summary.success_rate();
            assert!(r > 0.9, "SLT on {host}: {r}");
        }
        // The PostgreSQL suite is the least compatible (paper: ~28% mean);
        // DuckDB sits between (paper: ~45%).
        let mean = |suite: SuiteKind| {
            let hosts: Vec<f64> = EngineDialect::ALL
                .iter()
                .filter(|h| **h != donor_dialect(suite))
                .map(|h| s.cell(suite, *h).summary.success_rate())
                .collect();
            hosts.iter().sum::<f64>() / hosts.len() as f64
        };
        let slt = mean(SuiteKind::Slt);
        let pg = mean(SuiteKind::PgRegress);
        let duck = mean(SuiteKind::Duckdb);
        assert!(pg < duck, "pg {pg} must transfer worse than duckdb {duck}");
        assert!(duck < slt, "duckdb {duck} must transfer worse than SLT {slt}");
        assert!(pg < 0.75, "pg suite must lose most cases cross-host: {pg}");
    }

    #[test]
    fn donor_runs_expose_dependencies() {
        let s = small_study();
        // SQLite's suite has (almost) no dependencies; PostgreSQL's and
        // DuckDB's do (paper Table 4: 2 vs 4,075 vs 1,035 failures).
        let slt = s.donor_run(SuiteKind::Slt);
        let pg = s.donor_run(SuiteKind::PgRegress);
        let duck = s.donor_run(SuiteKind::Duckdb);
        let rate = |r: &SuiteRunSummary| r.failed as f64 / r.executed.max(1) as f64;
        assert!(rate(slt) < 0.02, "SLT donor failure rate {}", rate(slt));
        assert!(rate(pg) > rate(slt), "pg must fail more than SLT on donor");
        assert!(duck.failed > 0, "DuckDB donor must fail on client deps");
    }

    #[test]
    fn dependency_classes_match_paper_shape() {
        // Larger scale so every injected dependency class appears in the
        // PostgreSQL sample (the paper samples from 4,075 failures).
        let s = run_study(
            StudyConfig::default().with_seed(21).with_scale(0.25).with_translated_arm(false),
        );
        // PostgreSQL: environment-dominated (Set Up biggest — Table 5).
        let pg = dependency_breakdown(s.donor_run(SuiteKind::PgRegress), 5);
        let setup = *pg.get(&DependencyClass::SetUp).unwrap_or(&0);
        assert!(setup > 0, "pg sample must contain Set Up failures: {pg:?}");
        // DuckDB: client-dominated (Format biggest — Table 5).
        let duck = dependency_breakdown(s.donor_run(SuiteKind::Duckdb), 5);
        let format = *duck.get(&DependencyClass::ClientFormat).unwrap_or(&0);
        let client_total = format
            + *duck.get(&DependencyClass::ClientNumeric).unwrap_or(&0)
            + *duck.get(&DependencyClass::ClientException).unwrap_or(&0);
        let total: usize = duck.values().sum();
        assert!(client_total * 2 > total, "DuckDB failures must be client-dominated: {duck:?}");
    }

    #[test]
    fn bugs_are_found() {
        let s = small_study();
        let crashes = s.bugs.iter().filter(|b| b.is_crash).count();
        let hangs = s.bugs.iter().filter(|b| !b.is_crash).count();
        // The paper found 3 crashes and 3 hangs; at small scale at least
        // one of each must surface through cross-suite execution.
        assert!(crashes >= 1, "bugs: {:?}", s.bugs);
        assert!(hangs >= 1, "bugs: {:?}", s.bugs);
    }

    #[test]
    fn coverage_union_dominates() {
        let s = small_study();
        for row in &s.coverage {
            assert!(
                row.squality_line >= row.original_line - 1e-12,
                "{:?}: union coverage must not shrink",
                row.engine
            );
            assert!(row.squality_branch >= row.original_branch - 1e-12);
            assert!(row.original_line > 0.0);
        }
        // At least one engine strictly improves (paper Table 8: all do).
        assert!(s.coverage.iter().any(|r| r.squality_line > r.original_line + 1e-12));
    }

    #[test]
    fn difficulty_summary_sums_to_one() {
        let s = small_study();
        for suite in EXECUTED_SUITES {
            let d = difficulty_summary(&s, suite);
            let sum: f64 = d.values().sum();
            assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0, "{suite:?}: {sum}");
        }
    }
}
