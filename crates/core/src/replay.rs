//! Regression replay: run the whole bug-store repro corpus as a suite.
//!
//! Each [`BugEntry`] is a self-contained, minimized repro with full
//! provenance: the cell configuration it failed under and the donor
//! environment it needs. Replay turns the store into a first-class
//! regression suite — parse every verified repro, group entries by cell
//! configuration, execute each group through one [`Harness`] run (any
//! backend, any worker count, byte-deterministic event log), and report
//! each entry's *transition*:
//!
//! * **still-failing** — the repro re-failed with its stored signature
//!   (modulo stability annotation): the bug is still present,
//! * **fixed** — the repro ran cleanly: the bug is gone,
//! * **regressed** — the repro failed *differently* (another signature,
//!   a crash, or a hang): behavior moved in a new way and the entry
//!   needs human eyes.
//!
//! Tombstones and unverified entries are skipped (they never reproduced
//! standalone, so a clean replay says nothing) and counted in
//! [`ReplayReport::skipped`].

use crate::harness::Harness;
use crate::triage::{Arm, CellRef};
use squality_backend::BackendSpec;
use squality_bugstore::{BugArm, BugEntry, BugStore};
use squality_formats::{parse_slt, ContentHasher, SltFlavor, TestFile};
use squality_runner::{FailureSignature, Outcome, RunObserver, Stability};

/// Replay parameters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ReplayConfig {
    /// Scheduler workers per group run (`0` = all cores). Purely a
    /// throughput knob: the report and event log are byte-identical at
    /// every worker count.
    pub workers: usize,
    /// Where replay runs execute — [`BackendSpec::Subprocess`] replays
    /// the corpus across the process boundary.
    pub backend: BackendSpec,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { workers: 0, backend: BackendSpec::InProcess }
    }
}

impl ReplayConfig {
    /// Replace the worker count (0 = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replace the execution backend.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }
}

/// What one entry's replay observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStatus {
    /// Re-failed with the stored signature: the bug is still there.
    StillFailing,
    /// Ran cleanly: the bug is gone.
    Fixed,
    /// Failed differently (new signature, crash, or hang).
    Regressed,
}

impl ReplayStatus {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            ReplayStatus::StillFailing => "still-failing",
            ReplayStatus::Fixed => "fixed",
            ReplayStatus::Regressed => "REGRESSED",
        }
    }
}

/// One replayed entry's transition.
#[derive(Debug, Clone)]
pub struct ReplayEntry {
    /// Store key of the entry.
    pub key: u64,
    /// Repro file name from the entry.
    pub repro_name: String,
    /// Cell display label (`"PostgreSQL→duckdb (translated)"`-style).
    pub cell_label: String,
    /// The stored signature the replay compares against.
    pub signature: FailureSignature,
    /// The stored stability verdict, when one was recorded.
    pub stability: Option<Stability>,
    /// The transition.
    pub status: ReplayStatus,
    /// For [`ReplayStatus::Regressed`]: the first differing failure
    /// signature observed, when the regression was a classified failure
    /// (crashes and hangs carry none).
    pub observed: Option<FailureSignature>,
    /// Record count of the replayed repro.
    pub records: usize,
}

/// Everything a replay run produces. The entries are ordered by store
/// key, so the report is independent of grouping and worker count.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Per-entry transitions, ordered by key.
    pub entries: Vec<ReplayEntry>,
    /// Entries not replayed: tombstones and unverified repros.
    pub skipped: usize,
    /// Records executed across all group runs (throughput accounting).
    pub total_statements: usize,
    /// Wall clock — advisory only, excluded from determinism.
    pub elapsed_nanos: u64,
}

impl ReplayReport {
    /// Entries that re-failed with their stored signature.
    pub fn still_failing(&self) -> usize {
        self.entries.iter().filter(|e| e.status == ReplayStatus::StillFailing).count()
    }

    /// Entries that ran cleanly.
    pub fn fixed(&self) -> usize {
        self.entries.iter().filter(|e| e.status == ReplayStatus::Fixed).count()
    }

    /// Entries that failed differently.
    pub fn regressed(&self) -> usize {
        self.entries.iter().filter(|e| e.status == ReplayStatus::Regressed).count()
    }

    /// Replayed records per second (0 when nothing ran).
    pub fn statements_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.total_statements as f64 / (self.elapsed_nanos as f64 / 1e9)
        }
    }
}

/// Replay every verified entry of `store`. See the module docs.
pub fn replay_store(store: &BugStore, config: &ReplayConfig) -> ReplayReport {
    replay_store_with_observers(store, config, &[])
}

/// [`replay_store`], streaming each group run's
/// [`RunEvent`](squality_runner::RunEvent)s to the observers. Groups
/// execute sequentially in a deterministic order (cell configuration,
/// then environment hash), so the combined event log is byte-identical
/// at every worker count.
pub fn replay_store_with_observers(
    store: &BugStore,
    config: &ReplayConfig,
    observers: &[&dyn RunObserver],
) -> ReplayReport {
    let started = std::time::Instant::now();
    let mut report = ReplayReport::default();

    // Group replayable entries by everything a Harness run fixes: cell
    // configuration plus the exact donor environment. Entries from
    // different studies may carry different environments for the same
    // cell, so the environment hash is part of the key.
    let mut groups: Vec<(GroupKey, Vec<(u64, BugEntry)>)> = Vec::new();
    for (key, entry) in store.entries() {
        if !entry.reproduced || entry.repro_text.is_empty() {
            report.skipped += 1;
            continue;
        }
        let gk = group_key(&entry);
        match groups.iter_mut().find(|(k, _)| *k == gk) {
            Some((_, members)) => members.push((key, entry)),
            None => groups.push((gk, vec![(key, entry)])),
        }
    }
    groups.sort_by_key(|(k, _)| *k);

    for (_, members) in &groups {
        let cell = cell_of(&members[0].1);
        let env = members[0].1.environment.clone();
        let (client, provision, translate) = cell.exec();
        // Prefix each file with its key: repro names are only unique
        // within the study that minted them.
        let files: Vec<TestFile> = members
            .iter()
            .map(|(key, entry)| {
                let name = format!("{key:016x}-{}", entry.repro_name);
                let mut file = parse_slt(&name, &entry.repro_text, SltFlavor::Duckdb);
                file.suite = cell.suite;
                file
            })
            .collect();
        let mut builder = Harness::builder()
            .files(cell.suite, &files)
            .environment(&env)
            .host(cell.host)
            .client(client)
            .provision(provision)
            .translate(translate)
            .workers(config.workers)
            .backend(config.backend.clone())
            .label(format!("replay {}", cell.label()));
        for obs in observers {
            builder = builder.observer(*obs);
        }
        let summary = builder.build().expect("files are always set").run().summary;
        report.total_statements += summary.executed;

        for ((key, entry), file) in members.iter().zip(&files) {
            let mut want = entry.signature.clone();
            want.stability = None;
            let mut observed = None;
            let mut still_failing = false;
            let mut other_failure = false;
            for f in summary.failures.iter().filter(|f| f.file == file.name) {
                let Outcome::Fail(info) = &f.result.outcome else { continue };
                if info.signature == want {
                    still_failing = true;
                } else {
                    other_failure = true;
                    if observed.is_none() {
                        observed = Some(info.signature.clone());
                    }
                }
            }
            let abnormal = summary.crashes.iter().any(|c| c.file == file.name)
                || summary.hangs.iter().any(|h| h.file == file.name);
            let status = if still_failing {
                ReplayStatus::StillFailing
            } else if other_failure || abnormal {
                ReplayStatus::Regressed
            } else {
                ReplayStatus::Fixed
            };
            report.entries.push(ReplayEntry {
                key: *key,
                repro_name: entry.repro_name.clone(),
                cell_label: cell.label(),
                signature: entry.signature.clone(),
                stability: entry.stability.clone(),
                status,
                observed: if status == ReplayStatus::Regressed { observed } else { None },
                records: file.record_count(),
            });
        }
    }

    report.entries.sort_by_key(|e| e.key);
    report.elapsed_nanos = started.elapsed().as_nanos() as u64;
    report
}

/// The triage-side cell a bug entry came from.
pub(crate) fn cell_of(entry: &BugEntry) -> CellRef {
    CellRef {
        suite: entry.suite,
        host: entry.host,
        arm: match entry.arm {
            BugArm::DonorBare => Arm::DonorBare,
            BugArm::Verbatim => Arm::Verbatim,
            BugArm::Translated => Arm::Translated,
        },
    }
}

type GroupKey = (u8, u8, u8, u64);

fn group_key(entry: &BugEntry) -> GroupKey {
    let suite = match entry.suite {
        squality_formats::SuiteKind::Slt => 0,
        squality_formats::SuiteKind::Duckdb => 1,
        squality_formats::SuiteKind::PgRegress => 2,
        squality_formats::SuiteKind::MysqlTest => 3,
    };
    let host = match entry.host {
        squality_engine::EngineDialect::Sqlite => 0,
        squality_engine::EngineDialect::Postgres => 1,
        squality_engine::EngineDialect::Duckdb => 2,
        squality_engine::EngineDialect::Mysql => 3,
    };
    let arm = match entry.arm {
        BugArm::DonorBare => 0,
        BugArm::Verbatim => 1,
        BugArm::Translated => 2,
    };
    let env = &entry.environment;
    let mut h = ContentHasher::new();
    h.write_usize(env.data_files.len());
    for (path, lines) in &env.data_files {
        h.write_str(path);
        h.write_usize(lines.len());
        for line in lines {
            h.write_str(line);
        }
    }
    h.write_usize(env.extensions.len());
    for ext in &env.extensions {
        h.write_str(ext);
    }
    h.write_usize(env.setup_sql.len());
    for sql in &env.setup_sql {
        h.write_str(sql);
    }
    (suite, host, arm, h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_study, StudyConfig};
    use crate::triage::{triage_study, TriageConfig};
    use std::sync::Arc;

    fn temp_store(tag: &str) -> Arc<BugStore> {
        let dir =
            std::env::temp_dir().join(format!("squality-replay-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BugStore::shared(dir)
    }

    fn populated_store(tag: &str) -> Arc<BugStore> {
        let study = run_study(StudyConfig::default().with_seed(21).with_scale(0.06));
        let store = temp_store(tag);
        let config = TriageConfig::default()
            .with_reduce(true)
            .with_workers(2)
            .with_max_probes(48)
            .with_store(Arc::clone(&store));
        triage_study(&study, &config);
        store
    }

    #[test]
    fn replay_reports_every_verified_entry_still_failing() {
        let store = populated_store("transitions");
        let verified = store
            .entries()
            .iter()
            .filter(|(_, e)| e.reproduced && !e.repro_text.is_empty())
            .count();
        assert!(verified > 0, "triage stored no verified repros");
        let report = replay_store(&store, &ReplayConfig::default().with_workers(2));
        assert_eq!(report.entries.len(), verified);
        assert_eq!(report.skipped, store.entries().len() - verified);
        // Nothing changed between triage and replay: every repro must
        // re-fail with its stored signature.
        assert_eq!(report.still_failing(), verified, "entries regressed or got fixed");
        assert_eq!((report.fixed(), report.regressed()), (0, 0));
        assert!(report.total_statements > 0);
        for pair in report.entries.windows(2) {
            assert!(pair[0].key < pair[1].key, "entries ordered by key");
        }
        store.clear().unwrap();
    }

    #[test]
    fn replay_is_deterministic_across_worker_counts() {
        let store = populated_store("determinism");
        let base = replay_store(&store, &ReplayConfig::default().with_workers(1));
        let base_table = crate::report::replay_table(&base);
        for workers in [2, 8] {
            let got = replay_store(&store, &ReplayConfig::default().with_workers(workers));
            assert_eq!(
                crate::report::replay_table(&got),
                base_table,
                "replay table differs at workers={workers}"
            );
        }
        store.clear().unwrap();
    }

    #[test]
    fn fixed_and_regressed_transitions_are_detected() {
        let store = populated_store("edits");
        let (key, mut entry) = store
            .entries()
            .into_iter()
            .find(|(_, e)| e.reproduced && !e.repro_text.is_empty())
            .expect("a verified entry");
        // A repro that cannot fail: the entry must read as fixed.
        entry.repro_text = "statement ok\nSELECT 1\n".to_string();
        store.store(&entry);
        let report = replay_store(&store, &ReplayConfig::default().with_workers(2));
        let replayed = report.entries.iter().find(|e| e.key == key).expect("entry replayed");
        assert_eq!(replayed.status, ReplayStatus::Fixed);
        // A repro failing with a different signature: regressed.
        entry.repro_text = "statement ok\nSELECT no_such_fn_xyz(1)\n".to_string();
        store.store(&entry);
        let report = replay_store(&store, &ReplayConfig::default().with_workers(2));
        let replayed = report.entries.iter().find(|e| e.key == key).expect("entry replayed");
        assert_eq!(replayed.status, ReplayStatus::Regressed);
        assert!(replayed.observed.is_some(), "regression carries the observed signature");
        store.clear().unwrap();
    }
}
