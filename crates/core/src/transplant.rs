//! Transplanting suites onto hosts (the paper's §2 methodology).
//!
//! A *donor* suite executes on a *host* engine under a chosen environment
//! provision level and client. The combinations reproduce the paper's
//! experiments:
//!
//! | Experiment | Host | Provision | Client |
//! |---|---|---|---|
//! | Donor validation (Tables 4–5) | donor | `Bare` | `Connector` |
//! | Cross-DBMS matrix (Fig. 4, Tables 6–7) | others | `CrossHost` | `Connector` |
//! | Expectation recording (corpus) | donor | `Full` | `Cli` |

use squality_corpus::{donor_dialect, GeneratedSuite};
use squality_engine::{ClientKind, EngineDialect, ErrorKind, PlanCache};
use squality_formats::SuiteKind;
use squality_runner::{
    Connector, EngineConnector, EngineConnectorFactory, FileResult, NumericMode, Outcome,
    RecordResult, Runner, RunnerOptions, TranslationCounts, TranslationMode,
};
use std::sync::Arc;

/// How much of the donor environment the host receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provision {
    /// Everything: data files, extensions, scheduler set-up (the donor CI).
    Full,
    /// What a porting engineer can carry over: data files and set-up SQL,
    /// but not the donor's binary extensions.
    CrossHost,
    /// Nothing — a fresh default installation (the paper's RQ3 situation).
    Bare,
}

/// One transplant configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    pub host: EngineDialect,
    pub client: ClientKind,
    pub provision: Provision,
    pub numeric: NumericMode,
    /// Adapt each statement from the donor dialect to the host dialect
    /// before execution (the translated arm of the matrix). A donor running
    /// on itself is unaffected: same-dialect translation is the identity.
    pub translate: bool,
}

impl RunConfig {
    /// The paper's unified-runner defaults for a host.
    pub fn unified(host: EngineDialect) -> RunConfig {
        RunConfig {
            host,
            client: ClientKind::Connector,
            provision: Provision::CrossHost,
            numeric: NumericMode::Exact,
            translate: false,
        }
    }

    /// Unified-runner defaults with statement translation enabled.
    pub fn unified_translated(host: EngineDialect) -> RunConfig {
        RunConfig { translate: true, ..RunConfig::unified(host) }
    }
}

/// The runner translation mode for a suite × config pair.
fn translation_mode(suite: &GeneratedSuite, cfg: &RunConfig) -> TranslationMode {
    if cfg.translate {
        TranslationMode::Translated {
            from: donor_dialect(suite.suite).text_dialect(),
            to: cfg.host.text_dialect(),
        }
    } else {
        TranslationMode::Verbatim
    }
}

/// A crash or hang observed while running a suite (paper §6).
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    pub file: String,
    pub line: usize,
    pub sql: Option<String>,
    pub message: String,
}

/// A failed record with its file, for sampling and classification.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureCase {
    pub file: String,
    pub result: RecordResult,
}

/// Aggregated result of one suite × host run.
#[derive(Debug, Clone)]
pub struct SuiteRunSummary {
    pub suite: SuiteKind,
    pub host: EngineDialect,
    pub total: usize,
    pub executed: usize,
    pub passed: usize,
    pub failed: usize,
    pub skipped: usize,
    pub crashes: Vec<Incident>,
    pub hangs: Vec<Incident>,
    pub failures: Vec<FailureCase>,
    /// Per-rule translation counters for this run (all zero when the run
    /// was verbatim or the donor ran on itself).
    pub translation: TranslationCounts,
}

impl SuiteRunSummary {
    /// Success rate among executed, non-abnormal cases — the Figure 4
    /// metric (crashes and hangs are excluded there and reported apart).
    pub fn success_rate(&self) -> f64 {
        let denom = self.passed + self.failed;
        if denom == 0 {
            1.0
        } else {
            self.passed as f64 / denom as f64
        }
    }

    /// Failures the host rejected at the syntax level (the paper's
    /// "Statements" class core) — the metric the translated arm targets.
    pub fn syntax_failures(&self) -> usize {
        self.failures
            .iter()
            .filter(|f| match &f.result.outcome {
                Outcome::Fail(info) => info.error_kind == Some(ErrorKind::Syntax),
                _ => false,
            })
            .count()
    }
}

/// Run a generated suite under a transplant configuration (single worker).
pub fn run_suite_on(suite: &GeneratedSuite, cfg: &RunConfig) -> SuiteRunSummary {
    run_suite_sharded(suite, cfg, 1, None).0
}

/// Run a generated suite under a transplant configuration, sharding its
/// files over `workers` parallel connections (0 = all cores) that
/// optionally share a statement-plan cache.
///
/// The summary is byte-identical for every worker count: the scheduler
/// resets + provisions a connection per file and stitches results back in
/// input order. The retired worker connectors are returned so callers can
/// harvest engine-level state (the coverage experiment unions their
/// feature-coverage maps).
pub fn run_suite_sharded(
    suite: &GeneratedSuite,
    cfg: &RunConfig,
    workers: usize,
    plan_cache: Option<Arc<PlanCache>>,
) -> (SuiteRunSummary, Vec<EngineConnector>) {
    let mut factory = EngineConnectorFactory::new(cfg.host, cfg.client);
    if let Some(cache) = plan_cache {
        factory = factory.plan_cache(cache);
    }
    let runner = Runner::new(RunnerOptions {
        numeric: cfg.numeric,
        fresh_database: false,
        translation: translation_mode(suite, cfg),
    });
    let execution = runner.run_suite_with(&factory, &suite.files, workers, |conn| {
        provision_for(suite, cfg, conn);
    });
    let mut summary = summarize(suite.suite, cfg.host, &execution.results);
    summary.translation = runner.translation_stats.counts();
    (summary, execution.connectors)
}

/// Apply the configured provision level to a freshly-reset connection.
fn provision_for(suite: &GeneratedSuite, cfg: &RunConfig, conn: &mut EngineConnector) {
    match cfg.provision {
        Provision::Full => suite.environment.provision(conn),
        Provision::CrossHost => {
            for (path, lines) in &suite.environment.data_files {
                conn.provide_file(path, lines.clone());
            }
            for sql in &suite.environment.setup_sql {
                let _ = conn.execute(sql);
            }
        }
        Provision::Bare => {}
    }
}

/// Fold per-file results into the aggregate summary, in input order.
fn summarize(suite: SuiteKind, host: EngineDialect, results: &[FileResult]) -> SuiteRunSummary {
    let mut summary = SuiteRunSummary {
        suite,
        host,
        total: 0,
        executed: 0,
        passed: 0,
        failed: 0,
        skipped: 0,
        crashes: Vec::new(),
        hangs: Vec::new(),
        failures: Vec::new(),
        translation: TranslationCounts::default(),
    };
    for r in results {
        fold_file(&mut summary, r);
    }
    summary
}

fn fold_file(summary: &mut SuiteRunSummary, r: &FileResult) {
    summary.total += r.total();
    summary.executed += r.executed();
    summary.passed += r.passed();
    summary.failed += r.failed();
    summary.skipped += r.skipped();
    for res in &r.results {
        match &res.outcome {
            Outcome::Crash(m) => summary.crashes.push(Incident {
                file: r.file.clone(),
                line: res.line,
                sql: res.sql.clone(),
                message: m.clone(),
            }),
            Outcome::Hang(m) => summary.hangs.push(Incident {
                file: r.file.clone(),
                line: res.line,
                sql: res.sql.clone(),
                message: m.clone(),
            }),
            Outcome::Fail(_) => {
                summary.failures.push(FailureCase { file: r.file.clone(), result: res.clone() })
            }
            _ => {}
        }
    }
}

/// Run a suite sequentially on one existing, caller-owned connector.
///
/// The study itself runs through [`run_suite_sharded`]; this remains the
/// public entry point for callers that need to accumulate engine state
/// (coverage, extensions) across several suites on a single connection —
/// the inherently sequential counterpart of the scheduler path.
pub fn run_suite_with_connector(
    suite: &GeneratedSuite,
    cfg: &RunConfig,
    conn: &mut EngineConnector,
) -> SuiteRunSummary {
    let runner = Runner::new(RunnerOptions {
        numeric: cfg.numeric,
        fresh_database: false,
        translation: translation_mode(suite, cfg),
    });
    let mut summary = summarize(suite.suite, cfg.host, &[]);
    for file in &suite.files {
        // Fresh database per file, then provision per the config.
        conn.reset();
        provision_for(suite, cfg, conn);
        let r = runner.run_file(conn, file);
        fold_file(&mut summary, &r);
    }
    summary.translation = runner.translation_stats.counts();
    summary
}

/// Deterministically sample up to `n` failures (the paper samples 100 per
/// cell, following standard SE sampling methodology).
pub fn sample_failures(failures: &[FailureCase], n: usize, seed: u64) -> Vec<&FailureCase> {
    if failures.len() <= n {
        return failures.iter().collect();
    }
    // Deterministic LCG-based index shuffle (no rand dependency here).
    let mut indices: Vec<usize> = (0..failures.len()).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..indices.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        indices.swap(i, j);
    }
    indices.truncate(n);
    indices.into_iter().map(|i| &failures[i]).collect()
}

/// The donor dialect for a generated suite.
pub fn donor_of(suite: &GeneratedSuite) -> EngineDialect {
    donor_dialect(suite.suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squality_corpus::generate_suite_scaled;

    #[test]
    fn donor_full_provision_passes_everything() {
        let gs = generate_suite_scaled(SuiteKind::Slt, 3, 0.05);
        let cfg = RunConfig {
            host: EngineDialect::Sqlite,
            client: ClientKind::Cli,
            provision: Provision::Full,
            numeric: NumericMode::Exact,
            translate: false,
        };
        let s = run_suite_on(&gs, &cfg);
        // The only tolerated failures are SLT's two runner-format
        // artifacts (paper Table 4: 2 failures).
        assert_eq!(s.failed, 2, "failures: {:?}", s.failures.first());
        assert!(s.passed > 0);
        assert!(s.success_rate() > 0.99);
    }

    #[test]
    fn donor_bare_run_fails_on_dependencies() {
        // The RQ3 situation: PostgreSQL donor without its environment.
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 3, 0.2);
        let cfg = RunConfig {
            host: EngineDialect::Postgres,
            client: ClientKind::Connector,
            provision: Provision::Bare,
            numeric: NumericMode::Exact,
            translate: false,
        };
        let s = run_suite_on(&gs, &cfg);
        assert!(s.failed > 0, "bare environment must expose dependencies");
        assert!(s.success_rate() < 1.0);
    }

    #[test]
    fn cross_host_run_fails_more_than_donor() {
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 3, 0.1);
        let donor = run_suite_on(
            &gs,
            &RunConfig {
                host: EngineDialect::Postgres,
                client: ClientKind::Cli,
                provision: Provision::Full,
                numeric: NumericMode::Exact,
                translate: false,
            },
        );
        let host = run_suite_on(&gs, &RunConfig::unified(EngineDialect::Mysql));
        assert!(host.success_rate() < donor.success_rate());
        assert!(host.failed > 0);
    }

    #[test]
    fn sharded_runs_match_sequential_at_any_worker_count() {
        let gs = generate_suite_scaled(SuiteKind::Duckdb, 11, 0.08);
        let cfg = RunConfig::unified(EngineDialect::Sqlite);
        let sequential = run_suite_on(&gs, &cfg);
        let cache = std::sync::Arc::new(PlanCache::new());
        for workers in [2, 4, 8] {
            let (sharded, _) =
                run_suite_sharded(&gs, &cfg, workers, Some(std::sync::Arc::clone(&cache)));
            assert_eq!(sharded.total, sequential.total, "workers={workers}");
            assert_eq!(sharded.passed, sequential.passed, "workers={workers}");
            assert_eq!(sharded.failed, sequential.failed, "workers={workers}");
            assert_eq!(sharded.skipped, sequential.skipped, "workers={workers}");
            assert_eq!(sharded.failures, sequential.failures, "workers={workers}");
            assert_eq!(sharded.crashes, sequential.crashes, "workers={workers}");
            assert_eq!(sharded.hangs, sequential.hangs, "workers={workers}");
        }
        // The same files replayed three times: the cache must be hot.
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn translated_arm_reduces_syntax_failures_cross_dialect() {
        let pg = generate_suite_scaled(SuiteKind::PgRegress, 7, 0.15);
        let duck = generate_suite_scaled(SuiteKind::Duckdb, 7, 0.15);
        for (gs, host) in [
            (&pg, EngineDialect::Sqlite),
            (&pg, EngineDialect::Mysql),
            (&duck, EngineDialect::Sqlite),
            (&duck, EngineDialect::Mysql),
        ] {
            let verbatim = run_suite_on(gs, &RunConfig::unified(host));
            let translated = run_suite_on(gs, &RunConfig::unified_translated(host));
            let (v, t) = (verbatim.syntax_failures(), translated.syntax_failures());
            assert!(v > 0, "{:?} on {host}: no verbatim syntax failures to fix", gs.suite);
            assert!(t < v, "{:?} on {host}: syntax failures {v} -> {t}", gs.suite);
            assert!(translated.translation.applied_total() > 0);
            assert_eq!(verbatim.translation, TranslationCounts::default());
        }
    }

    #[test]
    fn translated_arm_on_donor_is_identity() {
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 5, 0.08);
        let host = EngineDialect::Postgres;
        let verbatim = run_suite_on(&gs, &RunConfig::unified(host));
        let translated = run_suite_on(&gs, &RunConfig::unified_translated(host));
        assert_eq!(translated.passed, verbatim.passed);
        assert_eq!(translated.failed, verbatim.failed);
        assert_eq!(translated.failures, verbatim.failures);
        // Same-dialect translation never rewrites anything.
        assert_eq!(translated.translation.applied_total(), 0);
        assert_eq!(translated.translation.translated, 0);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let fc: Vec<FailureCase> = (0..250)
            .map(|i| FailureCase {
                file: format!("f{i}"),
                result: RecordResult { line: i, sql: None, outcome: Outcome::Pass },
            })
            .collect();
        let a = sample_failures(&fc, 100, 9);
        let b = sample_failures(&fc, 100, 9);
        assert_eq!(a.len(), 100);
        let fa: Vec<&str> = a.iter().map(|f| f.file.as_str()).collect();
        let fb: Vec<&str> = b.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(fa, fb);
        let c = sample_failures(&fc[..50], 100, 9);
        assert_eq!(c.len(), 50);
    }
}
