//! Transplanting suites onto hosts (the paper's §2 methodology).
//!
//! A *donor* suite executes on a *host* engine under a chosen environment
//! provision level and client. The combinations reproduce the paper's
//! experiments:
//!
//! | Experiment | Host | Provision | Client |
//! |---|---|---|---|
//! | Donor validation (Tables 4–5) | donor | `Bare` | `Connector` |
//! | Cross-DBMS matrix (Fig. 4, Tables 6–7) | others | `CrossHost` | `Connector` |
//! | Expectation recording (corpus) | donor | `Full` | `Cli` |

use squality_corpus::{donor_dialect, GeneratedSuite};
use squality_engine::{ClientKind, EngineDialect};
use squality_formats::SuiteKind;
use squality_runner::{
    Connector, EngineConnector, NumericMode, Outcome, RecordResult, Runner, RunnerOptions,
};

/// How much of the donor environment the host receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provision {
    /// Everything: data files, extensions, scheduler set-up (the donor CI).
    Full,
    /// What a porting engineer can carry over: data files and set-up SQL,
    /// but not the donor's binary extensions.
    CrossHost,
    /// Nothing — a fresh default installation (the paper's RQ3 situation).
    Bare,
}

/// One transplant configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    pub host: EngineDialect,
    pub client: ClientKind,
    pub provision: Provision,
    pub numeric: NumericMode,
}

impl RunConfig {
    /// The paper's unified-runner defaults for a host.
    pub fn unified(host: EngineDialect) -> RunConfig {
        RunConfig {
            host,
            client: ClientKind::Connector,
            provision: Provision::CrossHost,
            numeric: NumericMode::Exact,
        }
    }
}

/// A crash or hang observed while running a suite (paper §6).
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    pub file: String,
    pub line: usize,
    pub sql: Option<String>,
    pub message: String,
}

/// A failed record with its file, for sampling and classification.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureCase {
    pub file: String,
    pub result: RecordResult,
}

/// Aggregated result of one suite × host run.
#[derive(Debug, Clone)]
pub struct SuiteRunSummary {
    pub suite: SuiteKind,
    pub host: EngineDialect,
    pub total: usize,
    pub executed: usize,
    pub passed: usize,
    pub failed: usize,
    pub skipped: usize,
    pub crashes: Vec<Incident>,
    pub hangs: Vec<Incident>,
    pub failures: Vec<FailureCase>,
}

impl SuiteRunSummary {
    /// Success rate among executed, non-abnormal cases — the Figure 4
    /// metric (crashes and hangs are excluded there and reported apart).
    pub fn success_rate(&self) -> f64 {
        let denom = self.passed + self.failed;
        if denom == 0 {
            1.0
        } else {
            self.passed as f64 / denom as f64
        }
    }
}

/// Run a generated suite under a transplant configuration.
pub fn run_suite_on(suite: &GeneratedSuite, cfg: &RunConfig) -> SuiteRunSummary {
    let mut conn = EngineConnector::new(cfg.host, cfg.client);
    let mut summary = run_suite_with_connector(suite, cfg, &mut conn);
    summary.host = cfg.host;
    summary
}

/// Run a suite on an existing connector (used by the coverage experiment,
/// which accumulates coverage across several suites on one engine).
pub fn run_suite_with_connector(
    suite: &GeneratedSuite,
    cfg: &RunConfig,
    conn: &mut EngineConnector,
) -> SuiteRunSummary {
    let runner = Runner::new(RunnerOptions { numeric: cfg.numeric, fresh_database: false });
    let mut summary = SuiteRunSummary {
        suite: suite.suite,
        host: cfg.host,
        total: 0,
        executed: 0,
        passed: 0,
        failed: 0,
        skipped: 0,
        crashes: Vec::new(),
        hangs: Vec::new(),
        failures: Vec::new(),
    };

    for file in &suite.files {
        // Fresh database per file, then provision per the config.
        conn.reset();
        match cfg.provision {
            Provision::Full => suite.environment.provision(conn),
            Provision::CrossHost => {
                for (path, lines) in &suite.environment.data_files {
                    conn.provide_file(path, lines.clone());
                }
                for sql in &suite.environment.setup_sql {
                    let _ = conn.execute(sql);
                }
            }
            Provision::Bare => {}
        }
        let r = runner.run_file(conn, file);
        summary.total += r.total();
        summary.executed += r.executed();
        summary.passed += r.passed();
        summary.failed += r.failed();
        summary.skipped += r.skipped();
        for res in &r.results {
            match &res.outcome {
                Outcome::Crash(m) => summary.crashes.push(Incident {
                    file: file.name.clone(),
                    line: res.line,
                    sql: res.sql.clone(),
                    message: m.clone(),
                }),
                Outcome::Hang(m) => summary.hangs.push(Incident {
                    file: file.name.clone(),
                    line: res.line,
                    sql: res.sql.clone(),
                    message: m.clone(),
                }),
                Outcome::Fail(_) => summary
                    .failures
                    .push(FailureCase { file: file.name.clone(), result: res.clone() }),
                _ => {}
            }
        }
    }
    summary
}

/// Deterministically sample up to `n` failures (the paper samples 100 per
/// cell, following standard SE sampling methodology).
pub fn sample_failures(failures: &[FailureCase], n: usize, seed: u64) -> Vec<&FailureCase> {
    if failures.len() <= n {
        return failures.iter().collect();
    }
    // Deterministic LCG-based index shuffle (no rand dependency here).
    let mut indices: Vec<usize> = (0..failures.len()).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..indices.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        indices.swap(i, j);
    }
    indices.truncate(n);
    indices.into_iter().map(|i| &failures[i]).collect()
}

/// The donor dialect for a generated suite.
pub fn donor_of(suite: &GeneratedSuite) -> EngineDialect {
    donor_dialect(suite.suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squality_corpus::generate_suite_scaled;

    #[test]
    fn donor_full_provision_passes_everything() {
        let gs = generate_suite_scaled(SuiteKind::Slt, 3, 0.05);
        let cfg = RunConfig {
            host: EngineDialect::Sqlite,
            client: ClientKind::Cli,
            provision: Provision::Full,
            numeric: NumericMode::Exact,
        };
        let s = run_suite_on(&gs, &cfg);
        // The only tolerated failures are SLT's two runner-format
        // artifacts (paper Table 4: 2 failures).
        assert_eq!(s.failed, 2, "failures: {:?}", s.failures.first());
        assert!(s.passed > 0);
        assert!(s.success_rate() > 0.99);
    }

    #[test]
    fn donor_bare_run_fails_on_dependencies() {
        // The RQ3 situation: PostgreSQL donor without its environment.
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 3, 0.2);
        let cfg = RunConfig {
            host: EngineDialect::Postgres,
            client: ClientKind::Connector,
            provision: Provision::Bare,
            numeric: NumericMode::Exact,
        };
        let s = run_suite_on(&gs, &cfg);
        assert!(s.failed > 0, "bare environment must expose dependencies");
        assert!(s.success_rate() < 1.0);
    }

    #[test]
    fn cross_host_run_fails_more_than_donor() {
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 3, 0.1);
        let donor = run_suite_on(
            &gs,
            &RunConfig {
                host: EngineDialect::Postgres,
                client: ClientKind::Cli,
                provision: Provision::Full,
                numeric: NumericMode::Exact,
            },
        );
        let host = run_suite_on(&gs, &RunConfig::unified(EngineDialect::Mysql));
        assert!(host.success_rate() < donor.success_rate());
        assert!(host.failed > 0);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let fc: Vec<FailureCase> = (0..250)
            .map(|i| FailureCase {
                file: format!("f{i}"),
                result: RecordResult { line: i, sql: None, outcome: Outcome::Pass },
            })
            .collect();
        let a = sample_failures(&fc, 100, 9);
        let b = sample_failures(&fc, 100, 9);
        assert_eq!(a.len(), 100);
        let fa: Vec<&str> = a.iter().map(|f| f.file.as_str()).collect();
        let fb: Vec<&str> = b.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(fa, fb);
        let c = sample_failures(&fc[..50], 100, 9);
        assert_eq!(c.len(), 50);
    }
}
