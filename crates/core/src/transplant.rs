//! Transplanting suites onto hosts (the paper's §2 methodology).
//!
//! A *donor* suite executes on a *host* engine under a chosen environment
//! provision level and client. The combinations reproduce the paper's
//! experiments:
//!
//! | Experiment | Host | Provision | Client |
//! |---|---|---|---|
//! | Donor validation (Tables 4–5) | donor | `Bare` | `Connector` |
//! | Cross-DBMS matrix (Fig. 4, Tables 6–7) | others | `CrossHost` | `Connector` |
//! | Expectation recording (corpus) | donor | `Full` | `Cli` |

use squality_corpus::{donor_dialect, GeneratedSuite};
use squality_engine::{ClientKind, EngineDialect, ErrorKind};
use squality_formats::{RecordId, SuiteKind};
use squality_runner::{
    FileResult, NumericMode, Outcome, RecordResult, SkipReason, TranslationCounts,
};

/// How much of the donor environment the host receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provision {
    /// Everything: data files, extensions, scheduler set-up (the donor CI).
    Full,
    /// What a porting engineer can carry over: data files and set-up SQL,
    /// but not the donor's binary extensions.
    CrossHost,
    /// Nothing — a fresh default installation (the paper's RQ3 situation).
    Bare,
}

/// One transplant configuration.
///
/// `#[non_exhaustive]`: future knobs can land without breaking callers.
/// Outside this crate, start from [`RunConfig::default`] (or
/// [`RunConfig::unified`]) and set fields — or skip the struct entirely
/// and use [`Harness::builder`](crate::harness::Harness::builder), the
/// primary API.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct RunConfig {
    pub host: EngineDialect,
    pub client: ClientKind,
    pub provision: Provision,
    pub numeric: NumericMode,
    /// Adapt each statement from the donor dialect to the host dialect
    /// before execution (the translated arm of the matrix). A donor running
    /// on itself is unaffected: same-dialect translation is the identity.
    pub translate: bool,
}

impl Default for RunConfig {
    /// The unified-runner defaults on SQLite (the most permissive host).
    fn default() -> Self {
        RunConfig::unified(EngineDialect::Sqlite)
    }
}

impl RunConfig {
    /// The paper's unified-runner defaults for a host.
    pub fn unified(host: EngineDialect) -> RunConfig {
        RunConfig {
            host,
            client: ClientKind::Connector,
            provision: Provision::CrossHost,
            numeric: NumericMode::Exact,
            translate: false,
        }
    }

    /// Unified-runner defaults with statement translation enabled.
    pub fn unified_translated(host: EngineDialect) -> RunConfig {
        RunConfig { translate: true, ..RunConfig::unified(host) }
    }
}

/// A crash or hang observed while running a suite (paper §6).
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    pub file: String,
    pub line: usize,
    pub sql: Option<String>,
    pub message: String,
}

/// A failed record with its file, for sampling, classification, and
/// triage clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureCase {
    pub file: String,
    /// Stable id of the failing record within its file (source line plus
    /// execution ordinal) — what the triage table prints and the reducer
    /// anchors on.
    pub id: RecordId,
    pub result: RecordResult,
}

/// One distinct skip reason observed during a run, with its volume and
/// the first record (input order) that produced it — enough to trace an
/// aggregate count back to a concrete record, the way sampled failures
/// are traced through [`FailureCase`].
#[derive(Debug, Clone, PartialEq)]
pub struct SkipBreakdown {
    /// The interned reason, exactly as the runner recorded it.
    pub reason: SkipReason,
    /// How many records were skipped with this reason.
    pub count: usize,
    /// File of the first record skipped for this reason.
    pub first_file: String,
    /// Stable id of that record within its file.
    pub first: RecordId,
}

/// Aggregated result of one suite × host run.
#[derive(Debug, Clone)]
pub struct SuiteRunSummary {
    pub suite: SuiteKind,
    pub host: EngineDialect,
    pub total: usize,
    pub executed: usize,
    pub passed: usize,
    pub failed: usize,
    pub skipped: usize,
    pub crashes: Vec<Incident>,
    pub hangs: Vec<Incident>,
    pub failures: Vec<FailureCase>,
    /// Per-reason skip accounting, ordered by first occurrence (input
    /// order). Sums to `skipped`.
    pub skip_reasons: Vec<SkipBreakdown>,
    /// Per-rule translation counters for this run (all zero when the run
    /// was verbatim or the donor ran on itself).
    pub translation: TranslationCounts,
}

impl SuiteRunSummary {
    /// Success rate among executed, non-abnormal cases — the Figure 4
    /// metric (crashes and hangs are excluded there and reported apart).
    pub fn success_rate(&self) -> f64 {
        let denom = self.passed + self.failed;
        if denom == 0 {
            1.0
        } else {
            self.passed as f64 / denom as f64
        }
    }

    /// Failures the host rejected at the syntax level (the paper's
    /// "Statements" class core) — the metric the translated arm targets.
    pub fn syntax_failures(&self) -> usize {
        self.failures
            .iter()
            .filter(|f| match &f.result.outcome {
                Outcome::Fail(info) => info.error_kind == Some(ErrorKind::Syntax),
                _ => false,
            })
            .count()
    }
}

/// Fold per-file results into the aggregate summary, in input order.
pub(crate) fn summarize(
    suite: SuiteKind,
    host: EngineDialect,
    results: &[FileResult],
) -> SuiteRunSummary {
    let mut summary = SuiteRunSummary {
        suite,
        host,
        total: 0,
        executed: 0,
        passed: 0,
        failed: 0,
        skipped: 0,
        crashes: Vec::new(),
        hangs: Vec::new(),
        failures: Vec::new(),
        skip_reasons: Vec::new(),
        translation: TranslationCounts::default(),
    };
    for r in results {
        fold_file(&mut summary, r);
    }
    summary
}

fn fold_file(summary: &mut SuiteRunSummary, r: &FileResult) {
    summary.total += r.total();
    summary.executed += r.executed();
    summary.passed += r.passed();
    summary.failed += r.failed();
    summary.skipped += r.skipped();
    for (ordinal, res) in r.results.iter().enumerate() {
        match &res.outcome {
            Outcome::Crash(m) => summary.crashes.push(Incident {
                file: r.file.clone(),
                line: res.line,
                sql: res.sql.clone(),
                message: m.clone(),
            }),
            Outcome::Hang(m) => summary.hangs.push(Incident {
                file: r.file.clone(),
                line: res.line,
                sql: res.sql.clone(),
                message: m.clone(),
            }),
            Outcome::Fail(_) => summary.failures.push(FailureCase {
                file: r.file.clone(),
                id: RecordId::new(res.line, ordinal),
                result: res.clone(),
            }),
            Outcome::Skipped(reason) => {
                // Interned reasons come from per-connection `Arc`s, so
                // compare by text; distinct reasons stay few per run.
                match summary.skip_reasons.iter_mut().find(|s| *s.reason == **reason) {
                    Some(entry) => entry.count += 1,
                    None => summary.skip_reasons.push(SkipBreakdown {
                        reason: reason.clone(),
                        count: 1,
                        first_file: r.file.clone(),
                        first: RecordId::new(res.line, ordinal),
                    }),
                }
            }
            Outcome::Pass => {}
        }
    }
}

/// Deterministically sample up to `n` failures (the paper samples 100 per
/// cell, following standard SE sampling methodology).
pub fn sample_failures(failures: &[FailureCase], n: usize, seed: u64) -> Vec<&FailureCase> {
    if failures.len() <= n {
        return failures.iter().collect();
    }
    // Deterministic LCG-based index shuffle (no rand dependency here).
    let mut indices: Vec<usize> = (0..failures.len()).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..indices.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        indices.swap(i, j);
    }
    indices.truncate(n);
    indices.into_iter().map(|i| &failures[i]).collect()
}

/// The donor dialect for a generated suite.
pub fn donor_of(suite: &GeneratedSuite) -> EngineDialect {
    donor_dialect(suite.suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Harness;
    use squality_corpus::generate_suite_scaled;
    use squality_engine::PlanCache;
    use squality_runner::EngineConnector;
    use std::sync::Arc;

    /// Configure a [`Harness`] from a `RunConfig`.
    fn harness_for<'a>(
        suite: &'a GeneratedSuite,
        cfg: &RunConfig,
        workers: usize,
        plan_cache: Option<Arc<PlanCache>>,
    ) -> Harness<'a> {
        let mut builder = Harness::builder()
            .suite(suite)
            .host(cfg.host)
            .client(cfg.client)
            .provision(cfg.provision)
            .numeric(cfg.numeric)
            .translate(cfg.translate)
            .workers(workers);
        if let Some(cache) = plan_cache {
            builder = builder.plan_cache(cache);
        }
        builder.build().expect("suite is always set")
    }

    /// Single-worker builder run.
    fn run_one(suite: &GeneratedSuite, cfg: &RunConfig) -> SuiteRunSummary {
        harness_for(suite, cfg, 1, None).run().summary
    }

    #[test]
    fn donor_full_provision_passes_everything() {
        let gs = generate_suite_scaled(SuiteKind::Slt, 3, 0.05);
        let cfg = RunConfig {
            host: EngineDialect::Sqlite,
            client: ClientKind::Cli,
            provision: Provision::Full,
            numeric: NumericMode::Exact,
            translate: false,
        };
        let s = run_one(&gs, &cfg);
        // The only tolerated failures are SLT's two runner-format
        // artifacts (paper Table 4: 2 failures).
        assert_eq!(s.failed, 2, "failures: {:?}", s.failures.first());
        assert!(s.passed > 0);
        assert!(s.success_rate() > 0.99);
    }

    #[test]
    fn donor_bare_run_fails_on_dependencies() {
        // The RQ3 situation: PostgreSQL donor without its environment.
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 3, 0.2);
        let cfg = RunConfig {
            host: EngineDialect::Postgres,
            client: ClientKind::Connector,
            provision: Provision::Bare,
            numeric: NumericMode::Exact,
            translate: false,
        };
        let s = run_one(&gs, &cfg);
        assert!(s.failed > 0, "bare environment must expose dependencies");
        assert!(s.success_rate() < 1.0);
    }

    #[test]
    fn cross_host_run_fails_more_than_donor() {
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 3, 0.1);
        let donor = run_one(
            &gs,
            &RunConfig {
                host: EngineDialect::Postgres,
                client: ClientKind::Cli,
                provision: Provision::Full,
                numeric: NumericMode::Exact,
                translate: false,
            },
        );
        let host = run_one(&gs, &RunConfig::unified(EngineDialect::Mysql));
        assert!(host.success_rate() < donor.success_rate());
        assert!(host.failed > 0);
    }

    #[test]
    fn sharded_runs_match_sequential_at_any_worker_count() {
        let gs = generate_suite_scaled(SuiteKind::Duckdb, 11, 0.08);
        let cfg = RunConfig::unified(EngineDialect::Sqlite);
        let sequential = run_one(&gs, &cfg);
        let cache = std::sync::Arc::new(PlanCache::new());
        for workers in [2, 4, 8] {
            let sharded =
                harness_for(&gs, &cfg, workers, Some(std::sync::Arc::clone(&cache))).run().summary;
            assert_eq!(sharded.total, sequential.total, "workers={workers}");
            assert_eq!(sharded.passed, sequential.passed, "workers={workers}");
            assert_eq!(sharded.failed, sequential.failed, "workers={workers}");
            assert_eq!(sharded.skipped, sequential.skipped, "workers={workers}");
            assert_eq!(sharded.failures, sequential.failures, "workers={workers}");
            assert_eq!(sharded.crashes, sequential.crashes, "workers={workers}");
            assert_eq!(sharded.hangs, sequential.hangs, "workers={workers}");
            assert_eq!(sharded.skip_reasons, sequential.skip_reasons, "workers={workers}");
        }
        // The same files replayed three times: the cache must be hot.
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn caller_owned_connection_matches_the_scheduler_path() {
        let gs = generate_suite_scaled(SuiteKind::Duckdb, 5, 0.06);
        let cfg = RunConfig::unified(EngineDialect::Sqlite);
        let scheduled = harness_for(&gs, &cfg, 2, None).run().summary;
        let mut conn = EngineConnector::new(cfg.host, cfg.client);
        let sequential = harness_for(&gs, &cfg, 1, None).run_on(&mut conn);
        assert_eq!(sequential.total, scheduled.total);
        assert_eq!(sequential.passed, scheduled.passed);
        assert_eq!(sequential.failed, scheduled.failed);
        assert_eq!(sequential.skipped, scheduled.skipped);
        assert_eq!(sequential.failures, scheduled.failures);
        assert_eq!(sequential.crashes, scheduled.crashes);
        assert_eq!(sequential.hangs, scheduled.hangs);
        assert_eq!(sequential.skip_reasons, scheduled.skip_reasons);
    }

    #[test]
    fn skip_reasons_trace_to_records() {
        // SLT suites carry skipif/onlyif conditions, so a cross-host run
        // must surface at least the "condition excludes" reason.
        let gs = generate_suite_scaled(SuiteKind::Slt, 5, 0.05);
        let s = run_one(&gs, &RunConfig::unified(EngineDialect::Mysql));
        assert!(s.skipped > 0);
        let counted: usize = s.skip_reasons.iter().map(|b| b.count).sum();
        assert_eq!(counted, s.skipped, "{:?}", s.skip_reasons);
        for b in &s.skip_reasons {
            assert!(!b.first_file.is_empty());
            assert!(b.count > 0);
        }
        assert!(
            s.skip_reasons.iter().any(|b| b.reason.contains("condition excludes mysql")),
            "{:?}",
            s.skip_reasons
        );
    }

    #[test]
    fn translated_arm_reduces_syntax_failures_cross_dialect() {
        let pg = generate_suite_scaled(SuiteKind::PgRegress, 7, 0.15);
        let duck = generate_suite_scaled(SuiteKind::Duckdb, 7, 0.15);
        for (gs, host) in [
            (&pg, EngineDialect::Sqlite),
            (&pg, EngineDialect::Mysql),
            (&duck, EngineDialect::Sqlite),
            (&duck, EngineDialect::Mysql),
        ] {
            let verbatim = run_one(gs, &RunConfig::unified(host));
            let translated = run_one(gs, &RunConfig::unified_translated(host));
            let (v, t) = (verbatim.syntax_failures(), translated.syntax_failures());
            assert!(v > 0, "{:?} on {host}: no verbatim syntax failures to fix", gs.suite);
            assert!(t < v, "{:?} on {host}: syntax failures {v} -> {t}", gs.suite);
            assert!(translated.translation.applied_total() > 0);
            assert_eq!(verbatim.translation, TranslationCounts::default());
        }
    }

    #[test]
    fn translated_arm_on_donor_is_identity() {
        let gs = generate_suite_scaled(SuiteKind::PgRegress, 5, 0.08);
        let host = EngineDialect::Postgres;
        let verbatim = run_one(&gs, &RunConfig::unified(host));
        let translated = run_one(&gs, &RunConfig::unified_translated(host));
        assert_eq!(translated.passed, verbatim.passed);
        assert_eq!(translated.failed, verbatim.failed);
        assert_eq!(translated.failures, verbatim.failures);
        // Same-dialect translation never rewrites anything.
        assert_eq!(translated.translation.applied_total(), 0);
        assert_eq!(translated.translation.translated, 0);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let fc: Vec<FailureCase> = (0..250)
            .map(|i| FailureCase {
                file: format!("f{i}"),
                id: RecordId::new(i, i),
                result: RecordResult { line: i, sql: None, outcome: Outcome::Pass },
            })
            .collect();
        let a = sample_failures(&fc, 100, 9);
        let b = sample_failures(&fc, 100, 9);
        assert_eq!(a.len(), 100);
        let fa: Vec<&str> = a.iter().map(|f| f.file.as_str()).collect();
        let fb: Vec<&str> = b.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(fa, fb);
        let c = sample_failures(&fc[..50], 100, 9);
        assert_eq!(c.len(), 50);
    }
}
