//! Pin Tables 5 and 6 byte-identical to their pre-signature-refactor
//! baseline.
//!
//! The triage PR collapsed three classifier code paths (runner-side RQ3
//! and RQ4 decision procedures plus the report-side string matching) into
//! one precomputed `FailureSignature`. The golden files were rendered by
//! the last commit *before* that refactor at this exact configuration
//! (seed 77, scale 0.06); the classification the report prints must not
//! have moved by a byte.

use squality_core::{run_study, table5, table6, StudyConfig};

const GOLDEN_TABLE5: &str = include_str!("golden_table5.txt");
const GOLDEN_TABLE6: &str = include_str!("golden_table6.txt");

#[test]
fn tables_5_and_6_are_byte_identical_to_the_pre_refactor_baseline() {
    let study =
        run_study(StudyConfig::default().with_seed(77).with_scale(0.06).with_translated_arm(false));
    assert_eq!(table5(&study), GOLDEN_TABLE5, "Table 5 drifted from the pre-refactor baseline");
    assert_eq!(table6(&study), GOLDEN_TABLE6, "Table 6 drifted from the pre-refactor baseline");
}
