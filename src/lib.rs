//! SQuaLity-rs — umbrella crate re-exporting the full public API.
//!
//! A Rust reproduction of *"Understanding and Reusing Test Suites Across
//! Database Systems"* (SIGMOD 2024): a unified cross-DBMS test-suite format,
//! runner, four dialect-faithful engine simulators, calibrated synthetic
//! corpora, and the harnesses that regenerate every table and figure of the
//! paper's evaluation. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use squality_analysis as analysis;
pub use squality_core as core;
pub use squality_corpus as corpus;
pub use squality_engine as engine;
pub use squality_formats as formats;
pub use squality_runner as runner;
pub use squality_sqlast as sqlast;
pub use squality_sqltext as sqltext;
