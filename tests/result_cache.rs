//! The content-addressed result cache's contract: a warm study replays
//! **byte-identically** — same report tables, same JSONL event log, same
//! triage clusters — at any worker count, with every file answered from
//! the cache; and editing one file re-runs exactly that file.

use squality::core::triage::{triage_study_with_observers, TriageConfig};
use squality::core::{
    full_report, run_study_cached, run_study_with_observers, triage_table, Harness, ResultCache,
    Study, StudyConfig,
};
use squality::corpus::generate_suite_scaled;
use squality::engine::EngineDialect;
use squality::formats::SuiteKind;
use squality::runner::{JsonlObserver, RunObserver};
use std::path::PathBuf;
use std::sync::Arc;

/// A private cache directory under the system temp dir, removed on drop.
struct TempCacheDir(PathBuf);

impl TempCacheDir {
    fn new(tag: &str) -> TempCacheDir {
        let dir = std::env::temp_dir()
            .join(format!("squality-result-cache-it-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempCacheDir(dir)
    }

    /// A fresh handle over the same store: per-run hit/miss counters.
    fn cache(&self) -> Arc<ResultCache> {
        ResultCache::shared(&self.0)
    }
}

impl Drop for TempCacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_config(workers: usize) -> StudyConfig {
    StudyConfig::default()
        .with_seed(5)
        .with_scale(0.02)
        .with_workers(workers)
        .with_translated_arm(true)
}

fn run_logged(workers: usize, cache: Option<Arc<ResultCache>>) -> (Study, String) {
    let events = JsonlObserver::new();
    let observers: [&dyn RunObserver; 1] = [&events];
    let study = run_study_cached(study_config(workers), &observers, cache);
    (study, events.log())
}

/// One cold cached run, then warm runs at several worker counts: the
/// report, the event log, and the triage table must be byte-identical to
/// each other **and** to an uncached run — and the warm runs must answer
/// every file from the cache.
#[test]
fn warm_study_replays_byte_identically() {
    let dir = TempCacheDir::new("warm");

    let events = JsonlObserver::new();
    let observers: [&dyn RunObserver; 1] = [&events];
    let baseline = run_study_with_observers(study_config(2), &observers);
    let baseline_log = events.log();
    let baseline_report = full_report(&baseline);
    assert_eq!(baseline.result_cache.hits + baseline.result_cache.misses, 0);

    let (cold, cold_log) = run_logged(2, Some(dir.cache()));
    assert_eq!(full_report(&cold), baseline_report, "cold cached report diverged");
    assert_eq!(cold_log, baseline_log, "cold cached event log diverged");
    assert!(cold.result_cache.stores > 0);

    let baseline_triage =
        triage_table(&triage_study_with_observers(&baseline, &TriageConfig::default(), &[]));

    for workers in [1, 2, 8] {
        let (warm, warm_log) = run_logged(workers, Some(dir.cache()));
        assert_eq!(warm.result_cache.misses, 0, "workers={workers}: warm run missed");
        assert!(warm.result_cache.hits > 0, "workers={workers}: warm run never hit");
        assert_eq!(full_report(&warm), baseline_report, "workers={workers}: warm report diverged");
        assert_eq!(warm_log, baseline_log, "workers={workers}: warm event log diverged");
        // Satellite: triage consumes a cache-replayed study unchanged.
        let warm_triage =
            triage_table(&triage_study_with_observers(&warm, &TriageConfig::default(), &[]));
        assert_eq!(warm_triage, baseline_triage, "workers={workers}: triage diverged");
    }
}

/// Stability runs bypass the result cache entirely: verdicts must come
/// from live perturbed re-execution, never replayed entries — a harness
/// carrying **both** a cache and a stability config performs zero
/// lookups and zero stores, and leaves the cache cold for later runs.
#[test]
fn stability_runs_never_touch_the_result_cache() {
    use squality::core::StabilityConfig;
    use squality::runner::Outcome;

    let dir = TempCacheDir::new("stability");
    let gs = generate_suite_scaled(SuiteKind::Slt, 11, 0.05);
    let cache = dir.cache();

    let run = Harness::builder()
        .suite(&gs)
        .host(EngineDialect::Duckdb)
        .result_cache(Arc::clone(&cache))
        .stability(StabilityConfig::default().with_reruns(1).with_workers(1))
        .build()
        .expect("suite configured")
        .run();

    let stats = cache.stats();
    assert_eq!(stats.hits, 0, "stability run answered files from the cache");
    assert_eq!(stats.misses, 0, "stability run performed cache lookups");
    assert_eq!(stats.stores, 0, "stability run stored results");

    // The bypass still produced a live, fully-annotated run.
    assert!(run.summary.failed > 0, "this cross-host cell should fail records");
    for f in &run.summary.failures {
        let Outcome::Fail(info) = &f.result.outcome else { continue };
        assert!(
            info.signature.stability.is_some(),
            "failure missing a stability verdict: {}",
            info.signature.normalized
        );
    }

    // The same cell without the stability arm uses the cache normally —
    // and starts cold, proving the arm really stored nothing.
    let plain = Harness::builder()
        .suite(&gs)
        .host(EngineDialect::Duckdb)
        .result_cache(Arc::clone(&cache))
        .build()
        .expect("suite configured")
        .run();
    let stats = cache.stats();
    assert_eq!(stats.hits, 0, "the stability run must not have warmed the cache");
    assert_eq!(stats.misses, gs.files.len() as u64);
    assert_eq!(stats.stores, gs.files.len() as u64);
    assert_eq!(plain.summary.failed, run.summary.failed);
}

/// File-level invalidation: editing one file's content re-executes exactly
/// that file; every other file replays.
#[test]
fn editing_one_file_invalidates_exactly_that_file() {
    let dir = TempCacheDir::new("dirty");
    let gs = generate_suite_scaled(SuiteKind::Slt, 11, 0.05);
    assert!(gs.files.len() >= 2, "need several files to tell invalidation scopes apart");

    let run = |suite, cache: Arc<ResultCache>| {
        let run = Harness::builder()
            .suite(suite)
            .host(EngineDialect::Duckdb)
            .result_cache(Arc::clone(&cache))
            .build()
            .expect("suite configured")
            .run();
        (run.summary, cache.stats())
    };

    let (cold_summary, cold_stats) = run(&gs, dir.cache());
    assert_eq!(cold_stats.misses, gs.files.len() as u64);
    assert_eq!(cold_stats.stores, gs.files.len() as u64);

    // Edit one file: any hashed field counts as content.
    let mut edited = gs.clone();
    edited.files[1].records[0].line += 1000;

    let (dirty_summary, dirty_stats) = run(&edited, dir.cache());
    assert_eq!(dirty_stats.misses, 1, "exactly the edited file must re-run");
    assert_eq!(dirty_stats.hits, gs.files.len() as u64 - 1);
    assert_eq!(dirty_stats.stores, 1);
    // The edit only moved a line number, so the roll-up is unchanged.
    assert_eq!(dirty_summary.passed, cold_summary.passed);
    assert_eq!(dirty_summary.failed, cold_summary.failed);
    assert_eq!(dirty_summary.skipped, cold_summary.skipped);

    // And the untouched suite still replays fully.
    let (_, warm_stats) = run(&gs, dir.cache());
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(warm_stats.hits, gs.files.len() as u64);
}
