//! Property-based tests over the core data structures and pipelines.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use squality::corpus::{donor_dialect, SqlGen, StatementClass};
use squality::engine::{ClientKind, Engine, EngineDialect, PlanCache, Value};
use squality::formats::{
    parse_slt, result_hash, write_slt, QueryExpectation, RecordKind, SltFlavor, SortMode,
    StatementExpect, SuiteKind, TestFile, TestRecord,
};
use squality::runner::{validate_query, NumericMode, Verdict};
use squality::sqlast::{parse_statement, print_statement, translate_sql, TranslationStats};
use squality::sqltext::{split_statements, tokenize, TextDialect};
use std::sync::Arc;

/// Statement classes whose generated SQL is meant to parse on the donor
/// (ParserGarbage and CliCommand are deliberately unparsable).
const PRINTABLE_CLASSES: [StatementClass; 18] = [
    StatementClass::CreateTable,
    StatementClass::Insert,
    StatementClass::Select,
    StatementClass::Update,
    StatementClass::Delete,
    StatementClass::DropTable,
    StatementClass::AlterTable,
    StatementClass::CreateIndex,
    StatementClass::CreateView,
    StatementClass::Begin,
    StatementClass::Commit,
    StatementClass::Rollback,
    StatementClass::Set,
    StatementClass::Pragma,
    StatementClass::Explain,
    StatementClass::With,
    StatementClass::DialectSelect,
    StatementClass::DivisionProbe,
];

proptest! {
    /// The lexer never panics and its spans always slice the input exactly.
    #[test]
    fn lexer_total_and_spans_valid(input in "\\PC{0,200}") {
        for dialect in TextDialect::ALL {
            for tok in tokenize(&input, dialect) {
                prop_assert!(tok.start <= tok.end);
                prop_assert!(tok.end <= input.len());
                prop_assert_eq!(&input[tok.start..tok.end], tok.text.as_str());
            }
        }
    }

    /// Statement splitting never loses SQL words: every word of every piece
    /// appears in the original script.
    #[test]
    fn splitter_preserves_content(
        stmts in prop::collection::vec("[a-zA-Z][a-zA-Z0-9_ ]{0,30}", 1..6)
    ) {
        let script = stmts.join("; ");
        let pieces = split_statements(&script, TextDialect::Generic);
        for p in &pieces {
            prop_assert!(script.contains(&p.text));
        }
        prop_assert!(pieces.len() <= stmts.len());
    }

    /// The best-effort classifier is total on arbitrary text.
    #[test]
    fn classifier_is_total(input in "\\PC{0,120}") {
        let _ = squality::sqltext::classify(&input, TextDialect::Generic);
    }

    /// The AST→SQL printer is round-trip stable over the statement shapes
    /// the corpus generators emit: `parse(print(ast)) == ast` under the
    /// donor's own dialect.
    #[test]
    fn printer_roundtrip_is_stable(seed in 0i64..192) {
        for suite in SuiteKind::ALL {
            let dialect = donor_dialect(suite).text_dialect();
            let mut gen = SqlGen::with_seasoning(suite, seed as usize, 0.6);
            let mut rng = SmallRng::seed_from_u64(seed as u64);
            for (i, class) in PRINTABLE_CLASSES.into_iter().enumerate() {
                let stmt = gen.generate(class, (seed as usize + i) % 5, i % 3 == 0, &mut rng);
                // Some generated statements are donor-invalid on purpose
                // (e.g. SET on SQLite); only parsed statements are in scope.
                let Ok(ast) = parse_statement(&stmt.sql, dialect) else { continue };
                let printed = print_statement(&ast, dialect);
                let reparsed = match parse_statement(&printed, dialect) {
                    Ok(r) => r,
                    Err(e) => return Err(TestCaseError::fail(format!(
                        "printed SQL no longer parses under {dialect}\n  in:  {}\n  out: {printed}\n  err: {e}",
                        stmt.sql
                    ))),
                };
                prop_assert!(
                    reparsed == ast,
                    "round trip changed the AST\n  in:  {}\n  out: {printed}",
                    stmt.sql
                );
            }
        }
    }

    /// Same-dialect translation is the identity for any statement text:
    /// the runner keeps the original bytes, so a translated run on the
    /// donor's own engine can never diverge from a verbatim one.
    #[test]
    fn translation_same_dialect_is_identity(seed in 0i64..128) {
        let stats = TranslationStats::new();
        for suite in SuiteKind::ALL {
            let dialect = donor_dialect(suite).text_dialect();
            let mut gen = SqlGen::with_seasoning(suite, seed as usize, 0.6);
            let mut rng = SmallRng::seed_from_u64(seed as u64 ^ 0xA5A5);
            for (i, class) in PRINTABLE_CLASSES.into_iter().enumerate() {
                let stmt = gen.generate(class, i % 5, false, &mut rng);
                prop_assert!(
                    translate_sql(&stmt.sql, dialect, dialect, &stats).is_none(),
                    "same-dialect translation must be identity: {}",
                    stmt.sql
                );
            }
        }
        prop_assert!(stats.counts().applied_total() == 0);
    }

    /// Value ordering is reflexive and antisymmetric under every NULL rule.
    #[test]
    fn value_total_cmp_is_consistent(a in value_strategy(), b in value_strategy()) {
        for nulls_smallest in [true, false] {
            let ab = a.total_cmp(&b, nulls_smallest);
            let ba = b.total_cmp(&a, nulls_smallest);
            prop_assert_eq!(ab, ba.reverse());
            prop_assert_eq!(a.total_cmp(&a, nulls_smallest), std::cmp::Ordering::Equal);
        }
    }

    /// rowsort validation is invariant under row permutation.
    #[test]
    fn rowsort_permutation_invariant(
        mut rows in prop::collection::vec(
            prop::collection::vec("[a-z0-9]{1,4}", 2..3), 1..6
        )
    ) {
        let expected: Vec<String> = rows.iter().flatten().cloned().collect();
        let exp = QueryExpectation::Values(expected);
        let original = validate_query(&rows, &exp, SortMode::RowSort, NumericMode::Exact);
        rows.reverse();
        let permuted = validate_query(&rows, &exp, SortMode::RowSort, NumericMode::Exact);
        prop_assert_eq!(
            matches!(original, Verdict::Match),
            matches!(permuted, Verdict::Match)
        );
    }

    /// Hash expectations agree with full-value expectations.
    #[test]
    fn hash_threshold_equivalent_to_values(
        values in prop::collection::vec("[a-z0-9]{1,6}", 1..20)
    ) {
        let rows: Vec<Vec<String>> = values.iter().map(|v| vec![v.clone()]).collect();
        let full = validate_query(
            &rows,
            &QueryExpectation::Values(values.clone()),
            SortMode::NoSort,
            NumericMode::Exact,
        );
        let hashed = validate_query(
            &rows,
            &QueryExpectation::Hash { count: values.len(), hash: result_hash(&values) },
            SortMode::NoSort,
            NumericMode::Exact,
        );
        prop_assert_eq!(matches!(full, Verdict::Match), matches!(hashed, Verdict::Match));
    }

    /// SLT writer → parser round-trips statement and query SQL.
    #[test]
    fn slt_roundtrip_preserves_sql(
        sqls in prop::collection::vec("SELECT [a-z0-9 ,]{1,20}", 1..8)
    ) {
        let file = TestFile {
            name: "prop.test".into(),
            suite: SuiteKind::Slt,
            records: sqls
                .iter()
                .map(|s| TestRecord::new(RecordKind::Statement {
                    sql: s.trim().to_string(),
                    expect: StatementExpect::Ok,
                }))
                .collect(),
        };
        let text = write_slt(&file);
        let back = parse_slt("prop.test", &text, SltFlavor::Classic);
        prop_assert_eq!(back.records.len(), file.records.len());
        for (a, b) in file.records.iter().zip(back.records.iter()) {
            let (RecordKind::Statement { sql: s1, .. }, RecordKind::Statement { sql: s2, .. })
                = (&a.kind, &b.kind) else {
                return Err(TestCaseError::fail("kind changed"));
            };
            prop_assert_eq!(s1, s2);
        }
    }

    /// Engine invariant: inserting N rows makes count(*) report N, on every
    /// dialect, for arbitrary integer payloads.
    #[test]
    fn insert_count_invariant(values in prop::collection::vec(-1000i64..1000, 1..20)) {
        for dialect in EngineDialect::ALL {
            let mut e = Engine::new(dialect);
            e.execute("CREATE TABLE t(a INTEGER)").unwrap();
            for v in &values {
                e.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
            }
            let r = e.execute("SELECT count(*) FROM t").unwrap();
            prop_assert_eq!(r.rows[0][0].clone(), Value::Integer(values.len() as i64));
        }
    }

    /// Engine invariant: ORDER BY really sorts, whatever the NULL rule.
    #[test]
    fn order_by_sorts(values in prop::collection::vec(-100i64..100, 1..15)) {
        for dialect in EngineDialect::ALL {
            let mut e = Engine::new(dialect);
            e.execute("CREATE TABLE t(a INTEGER)").unwrap();
            for v in &values {
                e.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
            }
            let r = e.execute("SELECT a FROM t ORDER BY a").unwrap();
            let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            prop_assert_eq!(got, sorted);
        }
    }

    /// Rendered values never contain a newline — the SLT value-wise format
    /// depends on one-value-per-line.
    #[test]
    fn rendering_is_single_line(v in value_strategy()) {
        for dialect in EngineDialect::ALL {
            for client in [ClientKind::Cli, ClientKind::Connector] {
                let s = squality::engine::render_value(&v, dialect, client);
                prop_assert!(!s.contains('\n'), "{s:?}");
            }
        }
    }
}

proptest! {
    /// All four format parsers are total: arbitrary text never panics and
    /// produces a well-formed IR (the suites contain garbage on purpose).
    #[test]
    fn format_parsers_are_total(input in "\\PC{0,400}") {
        let _ = parse_slt("f.test", &input, SltFlavor::Classic);
        let _ = parse_slt("f.test", &input, SltFlavor::Duckdb);
        let _ = squality::formats::parse_pg_sql_only("f.sql", &input);
        let _ = squality::formats::parse_mysql_test_only("f.test", &input);
    }

    /// The SQL statement parser is total over arbitrary input in every
    /// dialect: it may reject, never crash.
    #[test]
    fn sql_parser_is_total(input in "\\PC{0,200}") {
        for d in TextDialect::ALL {
            let _ = squality::sqlast::parse_statement(&input, d);
        }
    }

    /// The engines are total over arbitrary statement text: any input maps
    /// to Ok or a typed error (a panic would be a simulator crash *bug*,
    /// not a simulated crash finding).
    #[test]
    fn engines_are_total_over_text(input in "\\PC{0,120}") {
        for d in EngineDialect::ALL {
            let mut e = Engine::new(d);
            let _ = e.execute(&input);
        }
    }

    /// Plan-cached execution is observationally identical to uncached
    /// execution: for any generated statement sequence (valid and garbage
    /// alike), a cache-sharing engine and a plain engine agree result for
    /// result — and the second replay is answered from the cache.
    #[test]
    fn plan_cached_execution_matches_uncached(
        stmts in prop::collection::vec(sql_statement_strategy(), 1..25)
    ) {
        for dialect in EngineDialect::ALL {
            let cache = PlanCache::shared();
            let mut cached = Engine::new(dialect);
            cached.set_plan_cache(Arc::clone(&cache));
            let mut plain = Engine::new(dialect);
            for _pass in 0..2 {
                for sql in &stmts {
                    let a = cached.execute(sql);
                    let b = plain.execute(sql);
                    prop_assert_eq!(a, b);
                }
            }
            // Pass 2 re-executes every statement text: all cache hits.
            prop_assert!(cache.stats().hits >= stmts.len() as u64);
        }
    }
}

proptest! {
    /// Content addressing: perturbing any hashed field of one file's
    /// records changes that file's content hash — and nobody else's. The
    /// result cache keys files by this hash, so an incremental study
    /// re-runs exactly the edited file.
    #[test]
    fn file_mutation_invalidates_exactly_that_file(
        seed in 0i64..32,
        victim_frac in 0.0f64..1.0,
        record_frac in 0.0f64..1.0,
        bump in 1i64..100_000,
    ) {
        use squality::formats::file_content_hash;
        let suite = SuiteKind::ALL[(seed % 4) as usize];
        let gs = squality::corpus::generate_suite_scaled(suite, seed as u64, 0.03);
        if gs.files.is_empty() {
            return Ok(());
        }
        let before: Vec<u64> = gs.files.iter().map(file_content_hash).collect();

        let mut files = gs.files.clone();
        let victim = ((files.len() - 1) as f64 * victim_frac) as usize;
        if files[victim].records.is_empty() {
            return Ok(());
        }
        let r = ((files[victim].records.len() - 1) as f64 * record_frac) as usize;
        files[victim].records[r].line += bump as usize;

        let after: Vec<u64> = files.iter().map(file_content_hash).collect();
        for (i, (a, b)) in before.iter().zip(after.iter()).enumerate() {
            if i == victim {
                prop_assert!(a != b, "edited file {} kept its hash", i);
            } else {
                prop_assert!(a == b, "untouched file {} changed hash", i);
            }
        }
    }

    /// The triage reducer's contract: for a generated failing file, the
    /// ddmin output (a) is a subset of the original records, and (b) still
    /// fails with the **identical** `FailureSignature` when re-executed
    /// standalone under the same configuration.
    #[test]
    fn reduced_file_preserves_signature(
        noise in prop::collection::vec(noise_record_strategy(), 2..12),
        fail_kind in 0i64..3,
        fail_pos_frac in 0.0f64..1.0,
    ) {
        use squality::core::triage::reduce_file;
        use squality::core::Harness;
        use squality::runner::{EngineConnector, Outcome};

        // Assemble the file as SLT text so records carry real line numbers.
        let failing = match fail_kind {
            0 => "query I nosort\nSELECT count(*) FROM no_such_table\n----\n0\n\n",
            1 => "statement ok\nSELECT definitely_not_a_function(1)\n\n",
            _ => "query I nosort\nSELECT 1\n----\n2\n\n",
        };
        let fail_at = ((noise.len() as f64) * fail_pos_frac) as usize;
        let mut text = String::new();
        for (i, rec) in noise.iter().enumerate() {
            if i == fail_at {
                text.push_str(failing);
            }
            text.push_str(rec);
        }
        if fail_at >= noise.len() {
            text.push_str(failing);
        }
        let file = parse_slt("prop-reduce.test", &text, SltFlavor::Classic);

        let Some(r) = reduce_file(&file, SuiteKind::Slt, EngineDialect::Sqlite, 128) else {
            // Noise prefixes can mask the intended failure (e.g. an earlier
            // record fails first with a state-dependent signature the full
            // file cannot reproduce in isolation); reduce_file declining is
            // the documented behaviour, not a property violation.
            return Ok(());
        };

        // (a) Subset: every reduced record's SQL text occurs in the original.
        prop_assert!(r.reduced_records <= file.record_count());
        for rec in &r.reduced.records {
            let (RecordKind::Statement { sql, .. } | RecordKind::Query { sql, .. }) = &rec.kind
            else { continue };
            prop_assert!(text.contains(sql), "reduced record not from the original: {sql}");
        }

        // (b) Standalone re-execution fails with the identical signature.
        let files = [r.reduced.clone()];
        let mut conn = EngineConnector::new(EngineDialect::Sqlite, ClientKind::Connector);
        let summary = Harness::builder()
            .files(SuiteKind::Slt, &files)
            .host(EngineDialect::Sqlite)
            .build()
            .unwrap()
            .run_on(&mut conn);
        let preserved = summary.failures.iter().any(|f| match &f.result.outcome {
            Outcome::Fail(info) => info.signature == r.signature,
            _ => false,
        });
        prop_assert!(preserved, "signature lost: {:?}", r.signature.normalized);
    }

    /// The stability arm's core promise: a record it classifies `Stable`
    /// really is deterministic — an independent re-run of the same file
    /// under the same configuration yields the **identical**
    /// `FailureSignature`, stability verdict included, on every dialect.
    #[test]
    fn stable_classified_failures_reproduce_identically(
        noise in prop::collection::vec(noise_record_strategy(), 1..5),
        fail_kind in 0i64..3,
    ) {
        use squality::core::{Harness, StabilityConfig};
        use squality::runner::{Outcome, Stability};

        let failing = match fail_kind {
            0 => "query I nosort\nSELECT count(*) FROM no_such_table\n----\n0\n\n",
            1 => "statement ok\nSELECT definitely_not_a_function(1)\n\n",
            _ => "query I nosort\nSELECT 1\n----\n2\n\n",
        };
        let mut text = String::new();
        for rec in &noise {
            text.push_str(rec);
        }
        text.push_str(failing);
        let files = [parse_slt("prop-stability.test", &text, SltFlavor::Classic)];

        for dialect in EngineDialect::ALL {
            let run = || {
                Harness::builder()
                    .files(SuiteKind::Slt, &files)
                    .host(dialect)
                    .stability(StabilityConfig::default().with_reruns(1).with_workers(1))
                    .build()
                    .unwrap()
                    .run()
                    .summary
            };
            let first = run();
            let second = run();
            let mut stable_seen = 0usize;
            for f in &first.failures {
                let Outcome::Fail(info) = &f.result.outcome else { continue };
                prop_assert!(
                    info.signature.stability.is_some(),
                    "{dialect:?}: failure missing a verdict: {}",
                    info.signature.normalized
                );
                if info.signature.stability != Some(Stability::Stable) {
                    continue;
                }
                stable_seen += 1;
                let twin = second.failures.iter().find(|g| g.id == f.id);
                let Some(twin) = twin else {
                    return Err(TestCaseError::fail(format!(
                        "{dialect:?}: stable failure at {:?} vanished on re-run", f.id
                    )));
                };
                let Outcome::Fail(twin_info) = &twin.result.outcome else {
                    return Err(TestCaseError::fail(format!(
                        "{dialect:?}: stable failure at {:?} changed outcome kind", f.id
                    )));
                };
                prop_assert!(
                    twin_info.signature == info.signature,
                    "{dialect:?}: stable signature drifted\n  first:  {:?} ({:?})\n  second: {:?} ({:?})",
                    info.signature.normalized, info.signature.stability,
                    twin_info.signature.normalized, twin_info.signature.stability
                );
            }
            // The deliberate failing record fails the same way under every
            // perturbation axis, so at least it must read Stable.
            prop_assert!(stable_seen >= 1, "{dialect:?}: no Stable-classified failure");
        }
    }
}

/// Benign SLT records for the reduction property: DDL/DML/query noise that
/// passes on SQLite.
fn noise_record_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-d]".prop_map(|t| format!(
            "statement ok\nCREATE TABLE IF NOT EXISTS n_{t}(a INTEGER)\n\n"
        )),
        ("[a-d]", 0i64..50).prop_map(|(t, v)| format!(
            "statement ok\nCREATE TABLE IF NOT EXISTS n_{t}(a INTEGER)\n\nstatement ok\nINSERT INTO n_{t} VALUES ({v})\n\n"
        )),
        (1i64..9).prop_map(|v| format!("query I nosort\nSELECT {v}\n----\n{v}\n\n")),
    ]
}

/// Statements across DDL, DML, queries, and deliberate garbage — the mix a
/// loop-heavy SLT file replays.
fn sql_statement_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "CREATE TABLE t[0-3](a INTEGER, b INTEGER)",
        "INSERT INTO t[0-3] VALUES ([0-9]{1,3}, [0-9]{1,3})",
        "SELECT [0-9]{1,2} + [0-9]{1,2}",
        "SELECT [0-9]{1,2} / [0-9]{1,2}",
        "SELECT a, b FROM t[0-3] WHERE a > [0-9]{1,2}",
        "SELECT count(*) FROM t[0-3]",
        "DROP TABLE t[0-3]",
        "SELEC [a-z]{1,8}",
        "UPDATE t[0-3] SET a = [0-9]{1,2} WHERE b < [0-9]{1,2}",
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        (-1e12..1e12f64).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::text),
        any::<bool>().prop_map(Value::Boolean),
        prop::collection::vec(any::<u8>(), 0..8).prop_map(Value::Blob),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec(("[a-z]{1,4}", inner), 0..3).prop_map(Value::Struct),
        ]
    })
}
