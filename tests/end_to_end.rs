//! End-to-end integration tests spanning all crates: format parsing →
//! unified IR → runner → engine simulators, organised around the paper's
//! listings and findings.

use squality::core::{run_study, StudyConfig};
use squality::corpus::{donor_dialect, generate_suite_scaled};
use squality::engine::{ClientKind, EngineDialect};
use squality::formats::{parse_mysql_test, parse_pg_regress, parse_slt, SltFlavor, SuiteKind};
use squality::runner::{EngineConnector, Outcome, Runner};

#[test]
fn listing1_runs_through_the_full_stack() {
    let slt = "\
statement ok
CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER)

statement ok
INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4)

query II rowsort
SELECT a, b FROM t1 WHERE c > a
----
2
4
3
1
";
    let file = parse_slt("listing1.test", slt, SltFlavor::Classic);
    for dialect in EngineDialect::ALL {
        let mut conn = EngineConnector::new(dialect, ClientKind::Connector);
        let r = Runner::default().run_file(&mut conn, &file);
        assert_eq!(r.failed(), 0, "{dialect}: {:?}", r.results);
        assert_eq!(r.passed(), 3, "{dialect}");
    }
}

#[test]
fn listing2_mysql_pair_replays_on_mysql() {
    let test = "\
CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER);
INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4);
SELECT a, b FROM t1 WHERE c > a;
";
    let result = "\
CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER);
INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4);
SELECT a, b FROM t1 WHERE c > a;
a\tb
2\t4
3\t1
";
    let file = parse_mysql_test("example.test", test, result);
    let mut conn = EngineConnector::new(EngineDialect::Mysql, ClientKind::Cli);
    let r = Runner::default().run_file(&mut conn, &file);
    assert_eq!(r.failed(), 0, "{:?}", r.results);
    assert_eq!(r.passed(), 3);
}

#[test]
fn pg_regress_pair_replays_on_postgres() {
    let sql = "CREATE TABLE q(a int);\nINSERT INTO q VALUES (7);\nSELECT a FROM q;\n";
    let out = "\
CREATE TABLE q(a int);
CREATE TABLE
INSERT INTO q VALUES (7);
INSERT 0 1
SELECT a FROM q;
 a
---
 7
(1 row)
";
    let file = parse_pg_regress("basic.sql", sql, out);
    let mut conn = EngineConnector::new(EngineDialect::Postgres, ClientKind::Cli);
    let r = Runner::default().run_file(&mut conn, &file);
    assert_eq!(r.failed(), 0, "{:?}", r.results);
}

#[test]
fn cross_engine_transplant_of_duckdb_test() {
    // A DuckDB test using PRAGMA and a list literal fails on the other
    // hosts in the classes the paper's Table 6 predicts.
    let duck = "\
statement ok
PRAGMA explain_output = PHYSICAL_ONLY

query I nosort
SELECT [1, 2, 3]
----
[1, 2, 3]
";
    let file = parse_slt("duck.test", duck, SltFlavor::Duckdb);
    let runner = Runner::default();

    let mut on_duck = EngineConnector::new(EngineDialect::Duckdb, ClientKind::Cli);
    assert_eq!(runner.run_file(&mut on_duck, &file).failed(), 0);

    let mut on_pg = EngineConnector::new(EngineDialect::Postgres, ClientKind::Cli);
    let r = runner.run_file(&mut on_pg, &file);
    assert_eq!(r.failed(), 2, "{:?}", r.results); // PRAGMA + list literal
}

#[test]
fn paper_bugs_reproduce_through_suites() {
    // A micro version of the §6 campaign over hand-written donor records.
    let pg_style = "\
statement ok
CREATE SCHEMA a

statement ok
ALTER SCHEMA a RENAME TO b
";
    let file = parse_slt("alter_schema.test", pg_style, SltFlavor::Classic);
    let mut duck = EngineConnector::new(EngineDialect::Duckdb, ClientKind::Connector);
    let r = Runner::default().run_file(&mut duck, &file);
    assert!(r.crashed, "Listing 12 must crash DuckDB: {:?}", r.results);
}

#[test]
fn donor_environments_control_dependency_failures() {
    // The same pg suite: provisioned donor ≈ perfect, bare donor fails —
    // the paper's RQ3 in one assertion.
    let gs = generate_suite_scaled(SuiteKind::PgRegress, 99, 0.1);
    let runner = Runner::new(squality::runner::RunnerOptions {
        fresh_database: false,
        ..Default::default()
    });

    let mut provisioned_failed = 0;
    let mut bare_failed = 0;
    for file in &gs.files {
        let mut conn = gs.environment.donor_connector(donor_dialect(SuiteKind::PgRegress));
        provisioned_failed += runner.run_file(&mut conn, file).failed();

        let mut bare = EngineConnector::new(EngineDialect::Postgres, ClientKind::Connector);
        bare_failed += runner.run_file(&mut bare, file).failed();
    }
    assert_eq!(provisioned_failed, 0);
    assert!(bare_failed > 0);
}

#[test]
fn full_study_smoke() {
    let study = run_study(StudyConfig::default().with_seed(123).with_scale(0.04));
    // All four suites generated; the three executed ones have matrix rows.
    assert_eq!(study.suites.len(), 4);
    assert_eq!(study.matrix.len(), 12);
    assert_eq!(study.translated_matrix.len(), 12);
    // The report renders, including the translated-arm comparison.
    let report = squality::core::full_report(&study);
    assert!(report.contains("Figure 4"));
    assert!(report.contains("Table 8"));
    assert!(report.contains("Translation arm"));
}

#[test]
fn study_results_identical_across_worker_counts() {
    // The parallel pipeline is a pure throughput knob: the whole study —
    // matrix, donor runs, coverage, bug findings — must be byte-identical
    // at any worker count.
    let a = run_study(StudyConfig::default().with_seed(9).with_scale(0.03).with_workers(1));
    let b = run_study(StudyConfig::default().with_seed(9).with_scale(0.03).with_workers(3));
    assert_eq!(a.matrix.len(), b.matrix.len());
    for (ca, cb) in a.matrix.iter().zip(&b.matrix) {
        assert_eq!(ca.suite, cb.suite);
        assert_eq!(ca.host, cb.host);
        assert_eq!(ca.summary.total, cb.summary.total);
        assert_eq!(ca.summary.passed, cb.summary.passed);
        assert_eq!(ca.summary.failed, cb.summary.failed);
        assert_eq!(ca.summary.skipped, cb.summary.skipped);
        assert_eq!(ca.summary.failures, cb.summary.failures);
        assert_eq!(ca.summary.crashes, cb.summary.crashes);
        assert_eq!(ca.summary.hangs, cb.summary.hangs);
    }
    // The translated arm is part of the contract too: outcomes and the
    // per-rule translation counters are worker-count independent.
    assert_eq!(a.translated_matrix.len(), b.translated_matrix.len());
    for (ca, cb) in a.translated_matrix.iter().zip(&b.translated_matrix) {
        assert_eq!(ca.summary.passed, cb.summary.passed);
        assert_eq!(ca.summary.failed, cb.summary.failed);
        assert_eq!(ca.summary.failures, cb.summary.failures);
        assert_eq!(ca.summary.translation, cb.summary.translation);
        assert_eq!(ca.summary.syntax_failures(), cb.summary.syntax_failures());
    }
    for (da, db) in a.donor_runs.iter().zip(&b.donor_runs) {
        assert_eq!(da.failures, db.failures);
    }
    for (ra, rb) in a.coverage.iter().zip(&b.coverage) {
        assert_eq!(ra.engine, rb.engine);
        assert!((ra.original_line - rb.original_line).abs() < 1e-12);
        assert!((ra.original_branch - rb.original_branch).abs() < 1e-12);
        assert!((ra.squality_line - rb.squality_line).abs() < 1e-12);
        assert!((ra.squality_branch - rb.squality_branch).abs() < 1e-12);
    }
    assert_eq!(a.bugs.len(), b.bugs.len());
    // The shared plan cache must absorb a meaningful share of the study's
    // parse work (suites replay across donor runs, the matrix, coverage).
    assert!(a.parse_cache.hit_rate() > 0.3, "{:?}", a.parse_cache);
}

#[test]
fn skip_semantics_match_paper_table4() {
    // SLT on its donor skips a chunk of records (engine conditions);
    // DuckDB's suite skips via `require`.
    let slt = generate_suite_scaled(SuiteKind::Slt, 5, 0.1);
    let duck = generate_suite_scaled(SuiteKind::Duckdb, 5, 0.2);
    let runner = Runner::new(squality::runner::RunnerOptions {
        fresh_database: false,
        ..Default::default()
    });
    let mut skipped_slt = 0usize;
    let mut total_slt = 0usize;
    for f in &slt.files {
        let mut conn = EngineConnector::new(EngineDialect::Sqlite, ClientKind::Connector);
        let r = runner.run_file(&mut conn, f);
        skipped_slt += r.skipped();
        total_slt += r.total();
    }
    let rate = skipped_slt as f64 / total_slt as f64;
    assert!(rate > 0.05, "SLT skip rate {rate} (paper: 19.8%)");

    let mut any_require_skip = false;
    for f in &duck.files {
        let mut conn = EngineConnector::new(EngineDialect::Duckdb, ClientKind::Connector);
        let r = runner.run_file(&mut conn, f);
        if r.results
            .iter()
            .any(|x| matches!(&x.outcome, Outcome::Skipped(reason) if reason.contains("extension")))
        {
            any_require_skip = true;
        }
    }
    assert!(any_require_skip, "DuckDB require-gating must skip on bare engines");
}
