//! Determinism under fault injection: the contract that summaries and
//! JSONL event logs are byte-identical at any worker count must survive
//! the *fault* paths too — subprocess workers crashing on injected
//! schedules, bounded restarts, and the stability arm's seeded backend
//! probes. A crash that moved with worker placement would make flakiness
//! verdicts themselves flaky.

use squality::core::{BackendSpec, Harness, StabilityConfig};
use squality::corpus::generate_suite_scaled;
use squality::engine::EngineDialect;
use squality::formats::SuiteKind;
use squality::runner::{FailKind, JsonlObserver, Outcome};
use std::path::PathBuf;
use std::process::Command;
use std::sync::{Mutex, OnceLock};

/// Worker-binary discovery rides on process-global environment state —
/// serialize the tests that spawn subprocess backends.
fn env_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Locate `squality-backend-worker` next to this test binary, building it
/// on demand so the umbrella crate's `cargo test` does not depend on a
/// prior whole-workspace build.
fn worker_bin() -> PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let mut dir = std::env::current_exe().expect("test executable path");
        dir.pop(); // target/<profile>/deps
        dir.pop(); // target/<profile>
        let bin = dir.join(format!("squality-backend-worker{}", std::env::consts::EXE_SUFFIX));
        if !bin.exists() {
            let mut cmd = Command::new(env!("CARGO"));
            cmd.args(["build", "-p", "squality-backend", "--bin", "squality-backend-worker"]);
            if !cfg!(debug_assertions) {
                cmd.arg("--release");
            }
            let status = cmd.status().expect("spawn cargo to build the worker binary");
            assert!(status.success(), "building squality-backend-worker failed");
        }
        assert!(bin.exists(), "worker binary missing at {}", bin.display());
        bin
    })
    .clone()
}

/// A subprocess spec with the worker binary pinned explicitly.
fn subprocess_spec() -> BackendSpec {
    match BackendSpec::subprocess() {
        BackendSpec::Subprocess { deadline, max_restarts, .. } => {
            BackendSpec::Subprocess { bin: Some(worker_bin()), deadline, max_restarts }
        }
        other => other,
    }
}

/// With a crash schedule injected into every worker, the run must still
/// be byte-identical at workers 1, 2, and 8: the worker counts execs per
/// *file* (its counter resets on the RESET frame), and the restart
/// budget is per file too, so every crash point is a function of the
/// file alone — worker placement cannot move it.
#[test]
fn crash_injected_run_is_byte_identical_at_any_worker_count() {
    let _guard = env_lock().lock().unwrap();
    let gs = generate_suite_scaled(SuiteKind::Slt, 13, 0.05);
    let run_at = |workers: usize| {
        let events = JsonlObserver::new();
        let run = Harness::builder()
            .suite(&gs)
            .host(EngineDialect::Sqlite)
            .workers(workers)
            .backend(subprocess_spec())
            // Injected through the harness, not process-global env state;
            // the explicit "0" keeps the hang hook off even if the parent
            // environment carries one.
            .backend_env("SQUALITY_CRASH_AFTER", "7")
            .backend_env("SQUALITY_HANG_AFTER", "0")
            .observer(&events)
            .build()
            .expect("suite configured")
            .run();
        (run, events.log())
    };

    let (base, base_log) = run_at(1);
    let faults = base.backend_faults.expect("subprocess runs report fault counters");
    assert!(faults.crashes >= 1, "the schedule must kill at least one worker: {faults:?}");
    assert!(faults.restarts >= 1, "crashed workers must be restarted: {faults:?}");
    assert!(
        base.summary.failures.iter().any(|f| matches!(
            &f.result.outcome,
            Outcome::Fail(info) if info.kind == FailKind::BackendCrash
        )),
        "injected crashes must surface as classified failures"
    );

    for workers in [2, 8] {
        let (run, log) = run_at(workers);
        assert_eq!(log, base_log, "workers={workers}: event log diverged under crash injection");
        assert_eq!(run.summary.failures, base.summary.failures, "workers={workers}");
        assert_eq!(run.summary.passed, base.summary.passed, "workers={workers}");
        assert_eq!(run.summary.skipped, base.summary.skipped, "workers={workers}");
        assert_eq!(run.summary.skip_reasons, base.summary.skip_reasons, "workers={workers}");
        let refaults = run.backend_faults.expect("subprocess runs report fault counters");
        assert_eq!(refaults.crashes, faults.crashes, "workers={workers}: crash count moved");
    }
}

/// The stability arm's seeded fault-schedule axis spawns real subprocess
/// probes; the verdicts it stitches onto the summary must nonetheless be
/// identical at every harness *and* analysis worker count.
#[test]
fn stability_verdicts_under_fault_schedules_match_at_any_worker_count() {
    let _guard = env_lock().lock().unwrap();
    // The arm discovers the worker binary itself at probe time — pin it
    // so a bare `cargo test` needs no prior whole-workspace build.
    std::env::set_var("SQUALITY_BACKEND_WORKER", worker_bin());
    let gs = generate_suite_scaled(SuiteKind::Slt, 11, 0.04);
    let run_at = |workers: usize| {
        Harness::builder()
            .suite(&gs)
            .host(EngineDialect::Duckdb)
            .workers(workers)
            .stability(
                StabilityConfig::default()
                    .with_reruns(2)
                    .with_workers(workers)
                    .with_fault_schedules(true)
                    .with_backend_deadline(std::time::Duration::from_millis(100)),
            )
            .build()
            .expect("suite configured")
            .run()
            .summary
    };

    let base = run_at(1);
    let annotated = base
        .failures
        .iter()
        .filter(|f| {
            matches!(
                &f.result.outcome,
                Outcome::Fail(info) if info.signature.stability.is_some()
            )
        })
        .count();
    assert!(annotated > 0, "the arm must annotate this cell's failures");

    let two = run_at(2);
    let eight = run_at(8);
    std::env::remove_var("SQUALITY_BACKEND_WORKER");

    assert_eq!(two.failures, base.failures, "workers=2: verdicts diverged");
    assert_eq!(eight.failures, base.failures, "workers=8: verdicts diverged");
    assert_eq!(two.failed, base.failed);
    assert_eq!(eight.failed, base.failed);
}
