//! Out-of-process backend smoke tests at the harness level: a
//! `BackendSpec::Subprocess` run must produce the same verdicts as the
//! in-process engine, and a worker killed mid-suite must surface as a
//! classified `FailureCase` with bounded restarts — never a harness
//! abort.

use squality::core::{BackendSpec, Harness};
use squality::corpus::generate_suite_scaled;
use squality::engine::EngineDialect;
use squality::formats::SuiteKind;
use squality::runner::{FailKind, Outcome};
use std::path::PathBuf;
use std::process::Command;
use std::sync::{Mutex, OnceLock};

/// The crash/hang hooks are process-global environment variables, and the
/// harness forwards them to workers at run time — serialize the tests
/// that run subprocess backends so one test's injection cannot leak into
/// another's clean run.
fn env_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Locate `squality-backend-worker` next to this test binary, building it
/// on demand so the umbrella crate's `cargo test` does not depend on a
/// prior whole-workspace build.
fn worker_bin() -> PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let mut dir = std::env::current_exe().expect("test executable path");
        dir.pop(); // target/<profile>/deps
        dir.pop(); // target/<profile>
        let bin = dir.join(format!("squality-backend-worker{}", std::env::consts::EXE_SUFFIX));
        if !bin.exists() {
            let mut cmd = Command::new(env!("CARGO"));
            cmd.args(["build", "-p", "squality-backend", "--bin", "squality-backend-worker"]);
            if !cfg!(debug_assertions) {
                cmd.arg("--release");
            }
            let status = cmd.status().expect("spawn cargo to build the worker binary");
            assert!(status.success(), "building squality-backend-worker failed");
        }
        assert!(bin.exists(), "worker binary missing at {}", bin.display());
        bin
    })
    .clone()
}

/// A subprocess spec with the worker binary pinned explicitly.
fn subprocess_spec() -> BackendSpec {
    match BackendSpec::subprocess() {
        BackendSpec::Subprocess { deadline, max_restarts, .. } => {
            BackendSpec::Subprocess { bin: Some(worker_bin()), deadline, max_restarts }
        }
        other => other,
    }
}

#[test]
fn subprocess_run_matches_the_in_process_run() {
    let _guard = env_lock().lock().unwrap();
    let gs = generate_suite_scaled(SuiteKind::Slt, 13, 0.05);
    let run_with = |backend: BackendSpec| {
        Harness::builder()
            .suite(&gs)
            .host(EngineDialect::Sqlite)
            .workers(2)
            .backend(backend)
            .build()
            .expect("suite configured")
            .run()
    };
    let inproc = run_with(BackendSpec::InProcess);
    let sub = run_with(subprocess_spec());

    assert!(inproc.backend_faults.is_none(), "in-process runs have no backend counters");
    let faults = sub.backend_faults.expect("subprocess runs report fault counters");
    assert_eq!(faults.faults(), 0, "clean run must not count transport faults: {faults:?}");
    assert!(faults.spawns >= 1, "at least one worker process must have spawned");

    // Verdict-for-verdict equality across the process boundary.
    assert_eq!(sub.summary.total, inproc.summary.total);
    assert_eq!(sub.summary.passed, inproc.summary.passed);
    assert_eq!(sub.summary.failed, inproc.summary.failed);
    assert_eq!(sub.summary.skipped, inproc.summary.skipped);
    assert_eq!(sub.summary.failures, inproc.summary.failures);
    assert_eq!(sub.summary.skip_reasons, inproc.summary.skip_reasons);
}

#[test]
fn worker_crash_mid_suite_is_a_classified_failure_not_an_abort() {
    let _guard = env_lock().lock().unwrap();
    let gs = generate_suite_scaled(SuiteKind::Slt, 13, 0.05);
    std::env::set_var("SQUALITY_CRASH_AFTER", "7");
    let run = Harness::builder()
        .suite(&gs)
        .host(EngineDialect::Sqlite)
        .workers(1)
        .backend(subprocess_spec())
        .build()
        .expect("suite configured")
        .run();
    std::env::remove_var("SQUALITY_CRASH_AFTER");

    let faults = run.backend_faults.expect("subprocess runs report fault counters");
    assert!(faults.crashes >= 1, "the crash hook must be counted: {faults:?}");
    assert!(faults.restarts >= 1, "crashed workers must be restarted: {faults:?}");

    // The dead backend shows up as ordinary classified failures, each
    // with a stable (pid- and exit-status-free) signature.
    let crash_failures: Vec<_> = run
        .summary
        .failures
        .iter()
        .filter_map(|f| match &f.result.outcome {
            Outcome::Fail(info) if info.kind == FailKind::BackendCrash => Some(info),
            _ => None,
        })
        .collect();
    assert!(
        !crash_failures.is_empty(),
        "a dead backend must become a classified FailureCase, not a harness abort"
    );
    for info in &crash_failures {
        assert!(
            info.signature.normalized.contains("backend process died"),
            "unexpected crash signature: {}",
            info.signature.normalized
        );
        assert!(
            !info.signature.normalized.contains(|c: char| c.is_ascii_digit()),
            "crash signatures must not embed pids or exit statuses: {}",
            info.signature.normalized
        );
    }
}

/// The Listing-11 DuckDB "Python client" exception is simulated in the
/// client layer, not the engine — the parent must apply it to results
/// shipped over the wire exactly as it does in-process, or the RQ3
/// taxonomy diverges between backends.
#[test]
fn duckdb_client_exception_crosses_the_process_boundary() {
    let _guard = env_lock().lock().unwrap();
    use squality::core::Provision;
    let gs = generate_suite_scaled(SuiteKind::Duckdb, 7, 0.05);
    let run_with = |backend: BackendSpec| {
        Harness::builder()
            .suite(&gs)
            .host(EngineDialect::Duckdb)
            .provision(Provision::Bare)
            .workers(1)
            .backend(backend)
            .build()
            .expect("suite configured")
            .run()
    };
    let inproc = run_with(BackendSpec::InProcess).summary;
    let sub = run_with(subprocess_spec()).summary;
    assert!(
        inproc.failures.iter().any(|f| match &f.result.outcome {
            Outcome::Fail(info) => info.detail.contains("Python client"),
            _ => false,
        }),
        "this corpus slice should exercise the simulated client exception"
    );
    assert_eq!(sub.failures, inproc.failures);
    assert_eq!(sub.skip_reasons, inproc.skip_reasons);
}
