//! Event-stream determinism: the serialized JSONL run log (canonical
//! per-file ordering, timing fields off) must be **byte-identical** at
//! every worker count, and a `RunConfig` replayed through the builder
//! must produce the same summaries as direct builder configuration.

use squality::core::{Harness, StudyConfig};
use squality::corpus::generate_suite_scaled;
use squality::engine::EngineDialect;
use squality::formats::SuiteKind;
use squality::runner::{JsonlObserver, RunObserver};

fn slt_log(workers: usize) -> String {
    let gs = generate_suite_scaled(SuiteKind::Slt, 11, 0.05);
    let events = JsonlObserver::new();
    let run = Harness::builder()
        .suite(&gs)
        .host(EngineDialect::Duckdb)
        .workers(workers)
        .observer(&events)
        .build()
        .expect("suite configured")
        .run();
    assert!(run.summary.total > 0);
    events.log()
}

#[test]
fn jsonl_log_is_byte_identical_at_any_worker_count() {
    let baseline = slt_log(1);
    assert!(baseline.contains("\"event\":\"suite_started\""));
    assert!(baseline.contains("\"event\":\"record\""));
    assert!(baseline.contains("\"event\":\"suite_finished\""));
    // Skip reasons ride along in the log, traceable to their record ids.
    assert!(baseline.contains("\"outcome\":\"skip\""), "SLT on a cross host must skip");
    for workers in [2, 8] {
        assert_eq!(slt_log(workers), baseline, "workers={workers} changed the event log");
    }
}

#[test]
fn study_events_are_deterministic_across_worker_counts() {
    let study_log = |workers: usize| {
        let events = JsonlObserver::new();
        let observers: [&dyn RunObserver; 1] = [&events];
        let config = StudyConfig::default()
            .with_seed(5)
            .with_scale(0.02)
            .with_workers(workers)
            .with_translated_arm(true);
        let study = squality::core::run_study_with_observers(config, &observers);
        assert_eq!(study.matrix.len(), 12);
        events.log()
    };
    let baseline = study_log(1);
    // One suite_started per cell: 3 donor runs + 12 + 12 matrix cells +
    // 12 coverage runs (3 engines × (1 own + 3 unified)).
    assert_eq!(baseline.matches("\"event\":\"suite_started\"").count(), 3 + 12 + 12 + 12);
    assert!(baseline.contains("(translated)"));
    assert_eq!(study_log(3), baseline, "study event log changed with worker count");
}

#[test]
fn run_config_replayed_through_the_builder_matches_direct_configuration() {
    use squality::core::RunConfig;
    let gs = generate_suite_scaled(SuiteKind::PgRegress, 7, 0.05);
    let mut cfg = RunConfig::unified(EngineDialect::Sqlite);
    cfg.translate = true;
    let direct = Harness::builder()
        .suite(&gs)
        .host(EngineDialect::Sqlite)
        .translate(true)
        .build()
        .expect("suite configured")
        .run()
        .summary;
    // A RunConfig (as carried by triage probes and reports) must replay
    // to the identical run when every knob is copied onto the builder.
    let replayed = Harness::builder()
        .suite(&gs)
        .host(cfg.host)
        .client(cfg.client)
        .provision(cfg.provision)
        .numeric(cfg.numeric)
        .translate(cfg.translate)
        .workers(3)
        .build()
        .expect("suite configured")
        .run()
        .summary;
    assert_eq!(replayed.passed, direct.passed);
    assert_eq!(replayed.failed, direct.failed);
    assert_eq!(replayed.skipped, direct.skipped);
    assert_eq!(replayed.failures, direct.failures);
    assert_eq!(replayed.skip_reasons, direct.skip_reasons);
    assert_eq!(replayed.translation, direct.translation);
}
