//! Cross-DBMS bug hunting (paper §6): execute each donor suite on every
//! other engine and report the crashes and hangs that surface.
//!
//! ```sh
//! cargo run --example bug_hunt
//! ```
//!
//! With the paper-version fault profiles this rediscoveres all six findings:
//! three crashes (DuckDB `ALTER SCHEMA`, DuckDB update-after-commit, MySQL
//! recursive-CTE / CVE-2024-20962) and three hangs (DuckDB recursive CTE,
//! SQLite `generate_series` overflow, MySQL join-order search).

use squality::core::{run_study, StudyConfig};

fn main() {
    let scale = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0.1);
    eprintln!("running the cross-DBMS execution matrix (scale {scale}, all cores)...");
    let config =
        StudyConfig::default().with_seed(0xB16B00).with_scale(scale).with_translated_arm(false);
    let study = run_study(config);

    let crashes: Vec<_> = study.bugs.iter().filter(|b| b.is_crash).collect();
    let hangs: Vec<_> = study.bugs.iter().filter(|b| !b.is_crash).collect();

    println!(
        "found {} crash signature(s) and {} hang signature(s) (paper: 3 + 3)\n",
        crashes.len(),
        hangs.len()
    );
    for bug in &study.bugs {
        println!(
            "[{}] {} crashed-by-suite={}",
            if bug.is_crash { "CRASH" } else { "HANG " },
            bug.host.name(),
            bug.donor_suite.donor_name(),
        );
        println!("    file: {}", bug.incident.file);
        if let Some(sql) = &bug.incident.sql {
            println!("    sql:  {sql}");
        }
        println!("    msg:  {}\n", bug.incident.message);
    }

    // The paper's §9 advice: "INTERNAL Error" messages are never expected
    // and indicate bugs — show the pattern-matching workflow.
    let internal =
        study.bugs.iter().filter(|b| b.incident.message.contains("INTERNAL Error")).count();
    println!("{internal} finding(s) match the \"INTERNAL Error\" bug pattern (paper §9).");
}
