//! RQ1/RQ2 analyses: statement mixes, standard compliance, predicate
//! complexity, and the runner-command census over the generated corpora.
//!
//! ```sh
//! cargo run --example suite_analysis
//! ```

use squality::analysis::{
    command_usage, compliance, predicate_distribution, statement_distribution,
};
use squality::corpus::generate_suite_scaled;
use squality::formats::{command_count, SuiteKind};

fn main() {
    let scale = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0.15);

    for suite in SuiteKind::ALL {
        let gs = generate_suite_scaled(suite, 7, scale);
        println!(
            "=== {} ({} files, {} records) ===",
            suite.donor_name(),
            gs.files.len(),
            gs.total_records()
        );

        let dist = statement_distribution(&gs.files);
        println!("  top statement types (Figure 2):");
        for (label, frac) in dist.ranked().into_iter().take(8) {
            println!("    {label:<16} {:>6.2}%", frac * 100.0);
        }

        let c = compliance(&gs.files);
        println!(
            "  standard compliance (Table 3): {:.2}% of statements, {:.2}% of files exclusively standard ({:.2}% counting CREATE INDEX)",
            c.statement_fraction * 100.0,
            c.exclusive_file_fraction * 100.0,
            c.exclusive_file_fraction_with_index * 100.0,
        );

        let p = predicate_distribution(&gs.files);
        println!(
            "  WHERE tokens (Figure 3): 0={:.1}% 1-2={:.1}% 3-10={:.1}% 11-100={:.1}% 100+={:.1}%; joins={:.1}%",
            p.bucket_fractions[0] * 100.0,
            p.bucket_fractions[1] * 100.0,
            p.bucket_fractions[2] * 100.0,
            p.bucket_fractions[3] * 100.0,
            p.bucket_fractions[4] * 100.0,
            p.join_fraction * 100.0,
        );

        let u = command_usage(&gs.files);
        println!(
            "  runner commands (Table 2): {} distinct used of {} supported\n",
            u.distinct(),
            command_count(suite),
        );
    }
}
