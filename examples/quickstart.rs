//! Quickstart: parse a sqllogictest file and run it on two engines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use squality::core::Harness;
use squality::engine::{ClientKind, EngineDialect, PlanCache};
use squality::formats::{parse_slt, SltFlavor, SuiteKind};
use squality::runner::{EngineConnector, JsonlObserver, Runner};
use std::sync::Arc;

// The paper's Listing 1, with a Listing 4-style division pair appended.
const SLT: &str = "\
statement ok
CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER)

statement ok
INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4)

query II rowsort
SELECT a, b FROM t1 WHERE c > a
----
2
4
3
1

onlyif mysql
query I nosort
SELECT ALL 62 DIV ( + - 2 )
----
-31

skipif mysql
query I nosort
SELECT ALL 62 / ( + - 2 )
----
-31
";

fn main() {
    // 1. Parse the donor-format file into the unified IR.
    let file = parse_slt("quickstart.test", SLT, SltFlavor::Classic);
    println!("parsed {} records from {}", file.records.len(), file.name);

    // 2. Run it on any engine through the unified runner.
    let runner = Runner::default();
    for dialect in EngineDialect::ALL {
        let mut conn = EngineConnector::new(dialect, ClientKind::Connector);
        let result = runner.run_file(&mut conn, &file);
        println!(
            "{:<12} passed {:>2} / failed {} / skipped {}",
            dialect.name(),
            result.passed(),
            result.failed(),
            result.skipped(),
        );
        for r in &result.results {
            if let squality::runner::Outcome::Fail(info) = &r.outcome {
                println!(
                    "    line {}: {} — expected {:?}, got {:?}",
                    r.line, info.detail, info.expected, info.actual
                );
            }
        }
    }
    println!(
        "\nThe DuckDB failure is the paper's headline semantic divergence:\n\
         `/` is integer division on SQLite/PostgreSQL but decimal on DuckDB\n\
         (104,033 failing SLT cases in the paper's Table 6)."
    );

    // 3. Scale up through the Harness builder: shard many files over a
    // worker pool with a shared plan cache, and stream typed run events to
    // an observer. Results and the (untimed) event log are byte-identical
    // whatever the worker count.
    let files: Vec<_> =
        (0..16).map(|i| parse_slt(&format!("file{i}.test"), SLT, SltFlavor::Classic)).collect();
    let cache = PlanCache::shared();
    let events = JsonlObserver::new();
    let run = Harness::builder()
        .files(SuiteKind::Slt, &files)
        .host(EngineDialect::Sqlite)
        .workers(4)
        .plan_cache(Arc::clone(&cache))
        .observer(&events)
        .label("quickstart")
        .build()
        .expect("a suite was configured")
        .run();
    let stats = cache.stats();
    println!(
        "\nparallel: {} files on 4 workers — {} records passed, \
         plan cache {} hits / {} misses",
        files.len(),
        run.summary.passed,
        stats.hits,
        stats.misses,
    );
    let log = events.log();
    println!(
        "the run emitted {} events; last: {}",
        log.lines().count(),
        log.lines().last().unwrap_or_default()
    );
}
