//! Quickstart: parse a sqllogictest file and run it on two engines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use squality::engine::{ClientKind, EngineDialect, PlanCache};
use squality::formats::{parse_slt, SltFlavor};
use squality::runner::{EngineConnector, EngineConnectorFactory, Runner};
use std::sync::Arc;

// The paper's Listing 1, with a Listing 4-style division pair appended.
const SLT: &str = "\
statement ok
CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER)

statement ok
INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4)

query II rowsort
SELECT a, b FROM t1 WHERE c > a
----
2
4
3
1

onlyif mysql
query I nosort
SELECT ALL 62 DIV ( + - 2 )
----
-31

skipif mysql
query I nosort
SELECT ALL 62 / ( + - 2 )
----
-31
";

fn main() {
    // 1. Parse the donor-format file into the unified IR.
    let file = parse_slt("quickstart.test", SLT, SltFlavor::Classic);
    println!("parsed {} records from {}", file.records.len(), file.name);

    // 2. Run it on any engine through the unified runner.
    let runner = Runner::default();
    for dialect in EngineDialect::ALL {
        let mut conn = EngineConnector::new(dialect, ClientKind::Connector);
        let result = runner.run_file(&mut conn, &file);
        println!(
            "{:<12} passed {:>2} / failed {} / skipped {}",
            dialect.name(),
            result.passed(),
            result.failed(),
            result.skipped(),
        );
        for r in &result.results {
            if let squality::runner::Outcome::Fail(info) = &r.outcome {
                println!(
                    "    line {}: {} — expected {:?}, got {:?}",
                    r.line, info.detail, info.expected, info.actual
                );
            }
        }
    }
    println!(
        "\nThe DuckDB failure is the paper's headline semantic divergence:\n\
         `/` is integer division on SQLite/PostgreSQL but decimal on DuckDB\n\
         (104,033 failing SLT cases in the paper's Table 6)."
    );

    // 3. Scale up: shard many files over a worker pool. A factory mints one
    // connection per worker, a shared plan cache parses each statement text
    // once, and results come back in input order — byte-identical whatever
    // the worker count.
    let files: Vec<_> =
        (0..16).map(|i| parse_slt(&format!("file{i}.test"), SLT, SltFlavor::Classic)).collect();
    let cache = PlanCache::shared();
    let factory = EngineConnectorFactory::new(EngineDialect::Sqlite, ClientKind::Connector)
        .plan_cache(Arc::clone(&cache));
    let results = runner.run_suite(&factory, &files, 4);
    let passed: usize = results.iter().map(|r| r.passed()).sum();
    let stats = cache.stats();
    println!(
        "\nparallel: {} files on 4 workers — {passed} records passed, \
         plan cache {} hits / {} misses",
        results.len(),
        stats.hits,
        stats.misses,
    );
}
