//! Run the paper's divergence listings on all four engine simulators and
//! show how the same SQL produces different answers — the "Semantic"
//! incompatibility class of Table 6.
//!
//! ```sh
//! cargo run --example dialect_divergence
//! ```

use squality::engine::{render_value, ClientKind, Engine, EngineDialect};

fn main() {
    let probes: &[(&str, &str)] = &[
        ("division (Listing 4 / Table 6)", "SELECT ALL 62 / ( + - 2 )"),
        ("COALESCE typing (§6)", "SELECT COALESCE(1, 1.0)"),
        ("row values with NULL (Listing 17)", "SELECT (null, 0) > (0, 0)"),
        ("privilege check (Listing 18)", "select has_column_privilege(1,1,1)"),
        ("string concat vs logical OR", "SELECT 'a' || 'b'"),
        ("text + integer (Table 6 Operators)", "SELECT 'abc' + 1"),
        ("type introspection", "SELECT pg_typeof(1)"),
        ("array literal (Listing 8)", "SELECT ARRAY[1,2,3,'4']"),
    ];

    for (label, sql) in probes {
        println!("{label}");
        println!("  {sql}");
        for dialect in EngineDialect::ALL {
            let mut e = Engine::new(dialect);
            let shown = match e.execute(sql) {
                Ok(r) => match r.rows.first().and_then(|row| row.first()) {
                    Some(v) => render_value(v, dialect, ClientKind::Cli),
                    None => "(no rows)".to_string(),
                },
                Err(err) => format!("ERROR: {}", err.message),
            };
            println!("    {:<12} {}", dialect.name(), shown);
        }
        println!();
    }
}
